"""Command-line interface: regenerate the paper's experiments.

Usage:
    python -m repro table1
    python -m repro table2
    python -m repro chip
    python -m repro fig1
    python -m repro fig7
    python -m repro fig10a [--measure N]
    python -m repro fig10b [--measure N]
    python -m repro run WORKLOAD DESIGN [--measure N] [--load X]
    python -m repro sweep [--workload W | --workload-file F] [--size WxH] ...
    python -m repro farm {enumerate,work,merge,status,import} ...
    python -m repro trace TRACE [--design D] [--size WxH]
    python -m repro scenario [PHASE ...] [--loads ...] [--seeds N]
    python -m repro workloads
    python -m repro plot results/sweep_X.jsonl [--out PNG]
    python -m repro apps
    python -m repro lint [PATHS ...] [--rule RULE] [--list-rules]
"""

from __future__ import annotations

import argparse
import re
import sys
from typing import List, Optional


def _cmd_table1(_args) -> None:
    from repro.circuits.link_design import table1
    from repro.eval.report import render_table

    rows = [
        {
            "variant": e.variant,
            "rate_gbps": e.data_rate_gbps,
            "max_hops": e.max_hops,
            "fj_per_b_mm": round(e.energy_fj_per_bit_mm, 1),
        }
        for e in table1()
    ]
    print(render_table(rows, title="Table I"))


def _cmd_table2(_args) -> None:
    from repro.config import TABLE_II_CONFIG as cfg

    print("Technology     %d nm" % cfg.technology_nm)
    print("Vdd, Freq      %.1f V, %.0f GHz" % (cfg.vdd, cfg.freq_hz / 1e9))
    print("Topology       %dx%d mesh" % (cfg.width, cfg.height))
    print("Channel width  %d bits" % cfg.flit_bits)
    print("Credit width   %d bits" % cfg.credit_bits)
    print("VCs per port   %d, %d-flit deep" % (cfg.vcs_per_port, cfg.vc_depth_flits))
    print("Packet size    %d bits" % cfg.packet_bits)
    print("Header width   %d bits (Head), %d bits (Body, Tail)"
          % (cfg.head_header_bits, cfg.body_header_bits))


def _cmd_chip(_args) -> None:
    from repro.circuits.signaling import chip_measurements

    vlr, full = chip_measurements()
    print("VLR:        %.1f Gb/s max, %.2f mW, %.0f fJ/b, %.0f ps/mm"
          % (vlr["max_rate_gbps"], vlr["power_mw"],
             vlr["energy_fj_per_bit"], vlr["delay_ps_per_mm"]))
    print("full-swing: %.1f Gb/s max, %.2f mW, %.0f fJ/b, %.0f ps/mm"
          % (full["max_rate_gbps"], full["power_mw"],
             full["energy_fj_per_bit"], full["delay_ps_per_mm"]))


def _cmd_fig7(_args) -> None:
    from repro.config import NocConfig
    from repro.core.noc_builder import build_smart_noc
    from repro.eval.report import render_table
    from repro.eval.scenarios import fig7_flows
    from repro.sim.traffic import ScriptedTraffic

    flows = fig7_flows()
    noc = build_smart_noc(
        NocConfig(), flows,
        traffic=ScriptedTraffic([(1, f.flow_id) for f in flows]),
    )
    noc.network.stats.measuring = True
    noc.network.run_cycles(100)
    rows = [
        {
            "flow": flows[p.flow_id].name,
            "stops": str(noc.network.stops_for_flow(flows[p.flow_id])),
            "head_latency": p.head_latency,
        }
        for p in sorted(noc.network.stats.measured_delivered,
                        key=lambda p: p.flow_id)
    ]
    print(render_table(rows, title="Fig 7"))


def _run_suite(measure: int):
    from repro.eval.experiments import run_suite

    return run_suite(warmup_cycles=1000, measure_cycles=measure)


def _cmd_fig10a(args) -> None:
    from repro.eval.experiments import fig10a_rows, headline_metrics
    from repro.eval.report import render_table

    suite = _run_suite(args.measure)
    print(render_table(fig10a_rows(suite), title="Fig 10a (cycles)"))
    metrics = headline_metrics(suite)
    print("saving vs mesh: %.1f%%; gap vs dedicated: %.2f cycles"
          % (100 * metrics.latency_saving_vs_mesh,
             metrics.gap_vs_dedicated_cycles))


def _cmd_fig10b(args) -> None:
    from repro.eval.experiments import fig10b_rows, headline_metrics
    from repro.eval.report import render_table

    suite = _run_suite(args.measure)
    print(render_table(fig10b_rows(suite), float_format="%.4f",
                       title="Fig 10b (W)"))
    print("mesh/smart power ratio: %.2fx"
          % headline_metrics(suite).power_ratio_mesh_over_smart)


def _cmd_run(args) -> None:
    from repro.eval.experiments import run_workload
    from repro.workloads import get_workload

    target = get_workload(args.workload)
    load = args.load if args.load is not None else target.default_load
    experiment = run_workload(
        args.workload, args.design, load=load, measure_cycles=args.measure
    )
    print("%s on %s: %.2f cycles avg latency, %.2f mW"
          % (experiment.app, experiment.design,
             experiment.mean_latency, experiment.power.total_w * 1e3))


def _load_file_workloads(path: str):
    """Register a spec file's workloads; exits with a clear message."""
    from repro.workloads.specfile import ensure_file_workloads

    try:
        return ensure_file_workloads(path)
    except (OSError, ValueError) as exc:
        raise SystemExit("--workload-file %s: %s" % (path, exc))


def _file_workload_spec(args):
    """(workload, WorkloadSpec) for --workload-file/--file-workload.

    The returned spec carries the reserved ``specfile`` param so pool
    and farm workers (which never saw this process's registration)
    self-load the file before building the workload.
    """
    from repro.workloads import WorkloadSpec, get_workload

    names = _load_file_workloads(args.workload_file)
    name = args.file_workload or names[0]
    if name not in names:
        raise SystemExit(
            "--file-workload %s: not defined in %s (it defines %s)"
            % (name, args.workload_file, ", ".join(names))
        )
    workload = get_workload(name)
    spec = WorkloadSpec.of(workload.name, specfile=args.workload_file)
    return workload, spec


def _workload_name(value: str) -> str:
    """argparse type for --workload/run: resolve in the registry early."""
    from repro.workloads import get_workload

    try:
        return get_workload(value).name
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _mesh_size(value: str):
    """argparse type for --size: "8x8" -> (8, 8)."""
    match = re.match(r"^(\d+)x(\d+)$", value.strip().lower())
    if not match:
        raise argparse.ArgumentTypeError(
            "size must look like WxH (e.g. 8x8), got %r" % value
        )
    return (int(match.group(1)), int(match.group(2)))


def _kernel_name(value: str) -> str:
    """argparse type for --kernel: validate against the registry (the
    import stays deferred to command-line use, like every subcommand)."""
    from repro.sim.network import KERNELS

    if value not in KERNELS:
        raise argparse.ArgumentTypeError(
            "unknown kernel %r (have %s)" % (value, ", ".join(KERNELS))
        )
    return value


def _design_list(value: str) -> List[str]:
    """argparse type for --designs: validate names before workers spawn."""
    import argparse

    from repro.eval.designs import DESIGNS

    designs = [d.strip() for d in value.split(",") if d.strip()]
    bad = [d for d in designs if d not in DESIGNS]
    if bad or not designs:
        raise argparse.ArgumentTypeError(
            "unknown design(s) %s (choose from %s)"
            % (",".join(bad) or "<empty>", ", ".join(DESIGNS))
        )
    return designs


def _arrival_kwargs(args):
    """(arrival, arrival_params) from the shared CLI arrival knobs."""
    params = {}
    if args.on_cycles is not None:
        params["on_cycles"] = args.on_cycles
    if args.off_cycles is not None:
        params["off_cycles"] = args.off_cycles
    if args.quiet_scale is not None:
        params["quiet_scale"] = args.quiet_scale
    if args.arrival == "bernoulli" and params:
        raise SystemExit(
            "--on-cycles/--off-cycles/--quiet-scale need --arrival "
            "onoff or mmpp"
        )
    return args.arrival, (params or None)


def _cmd_sweep(args) -> None:
    import os

    from repro.config import NocConfig
    from repro.eval.report import render_table
    from repro.eval.sweeps import (
        format_sweep_rows,
        run_workload_sweep,
        saturation_load,
        write_sweep_json,
    )
    from repro.workloads import get_workload

    designs = args.designs
    loads = [float(x) for x in args.loads.split(",")] if args.loads else None
    seeds = tuple(range(1, args.seeds + 1))
    if args.file_workload and not args.workload_file:
        raise SystemExit("--file-workload needs --workload-file")
    if args.workload_file:
        workload, spec = _file_workload_spec(args)
    else:
        source = args.workload or args.pattern or args.app or "VOPD"
        workload = get_workload(source)
        spec = workload.name
    cfg = None
    stem = "sweep_%s" % workload.name
    if args.size:
        width, height = args.size
        cfg = NocConfig(width=width, height=height)
        stem += "_%dx%d" % (width, height)
    out = args.out or os.path.join("results", stem + ".json")
    stream_path = os.path.splitext(out)[0] + ".jsonl"
    load_points = loads or list(workload.default_loads)
    if workload.load_axis == "injection_rate":
        title = (
            "Latency vs injection rate (%s, packets/cycle/node)"
            % workload.name
        )
    else:
        title = "Latency vs load (%s, x mapped bandwidth)" % workload.name
    total = len(designs) * len(load_points) * len(seeds)
    if args.resume and os.path.exists(stream_path):
        from repro.eval.sweeps import read_sweep_stream

        grid = {
            (d, float(load), int(s))
            for d in designs for load in load_points for s in seeds
        }
        streamed = {
            (p["design"], float(p["load"]), int(p["seed"]))
            for p in read_sweep_stream(stream_path, skip_partial=True)
        }
        total -= len(grid & streamed)
    progress = {"done": 0}

    def on_result(point) -> None:
        progress["done"] += 1
        print("  [%d/%d] %-10s load=%-8g seed=%d  %s" % (
            progress["done"], total, point["design"], point["load"],
            point["seed"],
            "saturated" if point["saturated"]
            else "%.2f cyc" % point["summary"].mean_head_latency,
        ))

    arrival, arrival_params = _arrival_kwargs(args)
    rows = run_workload_sweep(
        spec,
        designs=designs,
        loads=load_points,
        seeds=seeds,
        cfg=cfg,
        processes=args.jobs,
        kernel=args.kernel,
        measure_cycles=args.measure,
        on_result=on_result,
        stream_path=stream_path,
        resume=args.resume,
        arrival=arrival,
        arrival_params=arrival_params,
        slo=args.slo,
    )
    print(render_table(format_sweep_rows(rows), title=title))
    print("(* = saturated: the run failed to drain its measured packets)")
    for design in designs:
        knee = saturation_load(rows, design)
        if knee is not None:
            print("%-10s saturates at load %g" % (design, knee))
    meta = {
        "workload": workload.name,
        "kernel": args.kernel,
        "load_axis": workload.load_axis,
        "app": workload.name if workload.kind == "app" else None,
        "pattern": workload.name if workload.kind != "app" else None,
        "size": "%dx%d" % args.size if args.size else None,
        "designs": list(designs),
        "loads": load_points,
        "seeds": list(seeds),
        "batched": len(seeds) > 1,
        "measure_cycles": args.measure,
        "arrival": arrival,
    }
    if arrival_params:
        meta["arrival_params"] = arrival_params
    if args.workload_file:
        meta["specfile"] = args.workload_file
    if args.slo is not None:
        meta["slo"] = args.slo
    write_sweep_json(out, rows, meta=meta)
    print("wrote %s (aggregated rows); streamed grid points: %s"
          % (out, stream_path))


def _cmd_farm_enumerate(args) -> None:
    from repro.config import NocConfig
    from repro.eval.farm import enumerate_farm

    cfg = None
    if args.size:
        width, height = args.size
        cfg = NocConfig(width=width, height=height)
    loads = [float(x) for x in args.loads.split(",")] if args.loads else None
    arrival, arrival_params = _arrival_kwargs(args)
    if args.file_workload and not args.workload_file:
        raise SystemExit("--file-workload needs --workload-file")
    if args.workload_file:
        _workload, source = _file_workload_spec(args)
    elif args.workload:
        source = args.workload
    else:
        raise SystemExit("farm enumerate needs --workload or --workload-file")
    spec = enumerate_farm(
        source,
        designs=args.designs,
        loads=loads,
        seeds=tuple(range(1, args.seeds + 1)),
        cfg=cfg,
        kernel=args.kernel,
        root=args.root,
        measure_cycles=args.measure,
        arrival=arrival,
        arrival_params=arrival_params,
    )
    if args.quiet:
        print(spec.root)
        return
    print("farm queue %s: %d points (%d designs x %d loads x %d seeds)"
          % (spec.spec_hash, len(spec.points()), len(spec.designs),
             len(spec.loads), len(spec.seeds)))
    print("spec_dir=%s" % spec.root)


def _cmd_farm_work(args) -> None:
    from repro.eval.farm import load_farm, work_many, work_on

    spec = load_farm(_farm_spec_dir(args))
    if args.procs and args.procs > 1:
        work_many(
            spec, args.procs, worker_prefix=args.worker,
            max_points=args.max_points, lease_ttl=args.lease_ttl,
        )
        print("farm %s: %d worker processes joined" % (spec.spec_hash,
                                                       args.procs))
        return

    def on_point(point, row) -> None:
        print("  %-10s load=%-8g seed=%d  point=%s done"
              % (point.design, point.load, point.seed, point.point_hash))

    landed = work_on(
        spec, worker=args.worker, max_points=args.max_points,
        lease_ttl=args.lease_ttl, on_point=on_point,
    )
    print("farm %s: this worker landed %d point(s)"
          % (spec.spec_hash, landed))


def _cmd_farm_merge(args) -> None:
    from repro.eval.farm import merge_farm

    result = merge_farm(
        _farm_spec_dir(args), out_base=args.out, compact=args.compact,
        slo=args.slo,
    )
    print("farm %s: merged %d/%d points (%d duplicate rows, %d torn "
          "lines, %d rows outside grid)"
          % (result.spec_hash, result.done_points, result.total_points,
             result.duplicates, result.partial_lines,
             result.dropped_outside_grid))
    for path in (result.stream_path, result.json_path,
                 result.markdown_path):
        print("wrote %s" % path)
    if args.expect_complete and not result.complete:
        raise SystemExit(
            "farm %s is incomplete: %d of %d points missing (first: %s)"
            % (result.spec_hash, len(result.missing), result.total_points,
               result.missing[0]))


def _cmd_farm_status(args) -> None:
    from repro.eval.farm import farm_status

    status = farm_status(_farm_spec_dir(args), lease_ttl=args.lease_ttl)
    for key in ("spec_hash", "points", "done", "pending", "leases_fresh",
                "leases_stale", "shards", "rows", "duplicates",
                "partial_lines"):
        print("%-14s %s" % (key, status[key]))
    if args.expect_complete and status["pending"]:
        raise SystemExit(
            "farm %s is incomplete: %d of %d points pending"
            % (status["spec_hash"], status["pending"], status["points"]))


def _cmd_farm_import(args) -> None:
    from repro.eval.farm import import_stream

    for stream in args.streams:
        stats = import_stream(_farm_spec_dir(args), stream)
        print("%s: imported %d row(s), %d outside the grid"
              % (stream, stats["imported"], stats["outside_grid"]))


def _cmd_trace(args) -> None:
    from repro.config import NocConfig
    from repro.sim.trace import (
        compare_results,
        load_trace,
        replay_all_kernels,
        trace_span,
    )

    records = load_trace(args.trace)
    cfg = NocConfig()
    if args.size:
        width, height = args.size
        cfg = NocConfig(width=width, height=height)
    print("%s: %d packet(s) over %d cycle(s), replayed on %s (%dx%d)"
          % (args.trace, len(records), trace_span(records), args.design,
             cfg.width, cfg.height))
    results = replay_all_kernels(
        records, cfg, design=args.design, drain_limit=args.drain_limit,
        batched=not args.no_batched,
    )
    for name in sorted(results):
        result = results[name]
        print("  %-14s %5d delivered  mean head %8.2f cyc  %s"
              % (name, result.summary.count,
                 result.summary.mean_head_latency,
                 "drained" if result.drained else "NOT DRAINED"))
    mismatches = compare_results(results)
    for line in mismatches:
        print("  MISMATCH: %s" % line)
    if mismatches:
        raise SystemExit(
            "trace replay diverged across kernels (%d mismatch(es))"
            % len(mismatches)
        )
    print("replay bit-identical across %d kernel(s)" % len(results))


def _cmd_scenario(args) -> None:
    import os

    from repro.config import NocConfig
    from repro.eval.reconfig import (
        ScenarioPhase,
        ScenarioSpec,
        enumerate_scenario_farm,
        run_scenario_stream,
        scenario_phase_table,
    )
    from repro.eval.report import render_table
    from repro.eval.scenarios import FIG1_APPS
    from repro.workloads import WorkloadSpec, get_workload

    file_names = ()
    if args.workload_file:
        file_names = _load_file_workloads(args.workload_file)
    names = list(args.phases) or list(FIG1_APPS)
    loads = [float(x) for x in args.loads.split(",")] if args.loads else []
    if loads and len(loads) != len(names):
        raise SystemExit(
            "--loads names %d value(s) for %d phase(s)"
            % (len(loads), len(names))
        )
    phases = []
    for index, name in enumerate(names):
        workload = get_workload(name)  # raises early on unknown names
        params = (
            {"specfile": args.workload_file}
            if workload.name in file_names
            else {}
        )
        phases.append(ScenarioPhase(
            workload=WorkloadSpec.of(workload.name, **params),
            load=loads[index] if loads else None,
        ))
    scenario = ScenarioSpec.of(
        args.name or ("fig1" if not args.phases else
                      "_".join(n.lower() for n in names)),
        phases,
        design=args.design,
        kernel=args.kernel,
        warmup_cycles=args.warmup,
        measure_cycles=args.measure,
        cycles_per_store=args.cycles_per_store,
    )
    cfg = None
    if args.size:
        width, height = args.size
        cfg = NocConfig(width=width, height=height)
    seeds = tuple(range(1, args.seeds + 1))
    stream_path = args.out or os.path.join(
        "results", "scenario_%s.jsonl" % scenario.name
    )

    def on_result(row) -> None:
        print("  phase %d %-10s seed=%d  reconfig=%4d cyc  "
              "mean=%8.2f cyc  clock=%d" % (
                  row["phase"], row["app"], row["seed"],
                  row["reconfig_cycles"],
                  row["summary"].mean_head_latency,
                  row["clock_cycles"],
              ))

    rows = run_scenario_stream(
        scenario, cfg=cfg, seeds=seeds, stream_path=stream_path,
        resume=args.resume, on_result=on_result,
    )
    print(render_table(scenario_phase_table(scenario, rows),
                       title=scenario.describe()))
    print("wrote %s" % stream_path)
    if args.farm_root:
        farm = enumerate_scenario_farm(
            scenario, cfg=cfg, seeds=seeds, root=args.farm_root
        )
        print("farm queue %s (import-only): adopt the stream with\n"
              "  python -m repro farm import --spec %s --root %s %s"
              % (farm.spec_hash, farm.spec_hash, args.farm_root,
                 stream_path))


def _farm_spec_dir(args) -> str:
    from repro.eval.farm import resolve_spec_dir

    return resolve_spec_dir(args.spec, root=args.root)


def _cmd_workloads(args) -> None:
    from repro.workloads import WORKLOADS, workload_names

    if getattr(args, "workload_file", None):
        _load_file_workloads(args.workload_file)
    print("%-20s %-10s %-16s %s" % ("name", "kind", "load axis", "description"))
    for name in workload_names():
        workload = WORKLOADS[name]
        print("%-20s %-10s %-16s %s" % (
            name, workload.kind, workload.load_axis, workload.description,
        ))


def _cmd_plot(args) -> None:
    from repro.eval.plotting import (
        matplotlib_available,
        plot_sweep_stream,
        plot_tail_stream,
    )

    if not matplotlib_available():
        raise SystemExit(
            "matplotlib is not installed; install it to render sweep plots"
        )
    render = plot_tail_stream if args.histogram else plot_sweep_stream
    for stream in args.streams:
        out = args.out if len(args.streams) == 1 else None
        print("wrote %s" % render(stream, out_path=out, title=args.title))


def _cmd_lint(args) -> None:
    from repro.analysis.cli import run_lint

    code = run_lint(args.paths, rules=args.rules, list_rules=args.list_rules)
    if code:
        raise SystemExit(code)


def _cmd_apps(_args) -> None:
    from repro.apps.registry import PAPER_APP_ORDER, evaluation_task_graph

    for name in PAPER_APP_ORDER:
        graph = evaluation_task_graph(name)
        print("%-8s %2d tasks %2d flows %8.0f MB/s total"
              % (name, graph.num_tasks, graph.num_edges,
                 graph.total_bandwidth_bps() / 1e6))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate experiments from the SMART DATE'13 paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("table1").set_defaults(func=_cmd_table1)
    sub.add_parser("table2").set_defaults(func=_cmd_table2)
    sub.add_parser("chip").set_defaults(func=_cmd_chip)
    sub.add_parser("fig7").set_defaults(func=_cmd_fig7)
    for name, func in (("fig10a", _cmd_fig10a), ("fig10b", _cmd_fig10b)):
        p = sub.add_parser(name)
        p.add_argument("--measure", type=int, default=20000)
        p.set_defaults(func=func)
    p_run = sub.add_parser("run")
    p_run.add_argument("workload", type=_workload_name,
                       help="any registry name: an app (VOPD, H264, ...) or "
                       "a pattern (transpose, shuffle, ...)")
    p_run.add_argument("design", choices=("mesh", "smart", "dedicated"))
    p_run.add_argument("--measure", type=int, default=20000)
    p_run.add_argument("--load", type=float, default=None,
                       help="drive level on the workload's axis (default: "
                       "1.0x bandwidth for apps, 0.05 packets/cycle/node "
                       "for patterns)")
    p_run.set_defaults(func=_cmd_run)
    p_sweep = sub.add_parser(
        "sweep",
        help="multi-core latency-vs-load sweep (to saturation and beyond)",
    )
    sweep_source = p_sweep.add_mutually_exclusive_group()
    sweep_source.add_argument(
        "--workload", type=_workload_name, default=None,
        help="any workload registry name (see `python -m repro workloads`)",
    )
    sweep_source.add_argument("--app", type=_workload_name, default=None,
                              help="legacy alias for --workload")
    sweep_source.add_argument(
        "--pattern", type=_workload_name, default=None,
        help="legacy alias for --workload",
    )
    sweep_source.add_argument(
        "--workload-file", default=None, metavar="PATH",
        help="YAML/TSV workload spec file (docs/workloads.md); pool "
        "workers self-load it, so the sweep parallelises as usual",
    )
    p_sweep.add_argument(
        "--file-workload", default=None, metavar="NAME",
        help="which workload in --workload-file to sweep (default: the "
        "file's first definition)",
    )
    p_sweep.add_argument(
        "--size", type=_mesh_size, default=None,
        help="mesh size WxH (e.g. 8x8; default: the paper's 4x4)",
    )
    p_sweep.add_argument(
        "--designs",
        default="mesh,smart,dedicated",
        type=_design_list,
        help="comma-separated subset of: mesh, smart, dedicated",
    )
    p_sweep.add_argument(
        "--loads",
        help="comma-separated load points: bandwidth scales for apps, "
        "packets/cycle/node for patterns",
    )
    p_sweep.add_argument(
        "--kernel", default="active", type=_kernel_name,
        help="simulation kernel for every grid point: active, event or "
        "legacy (the stream header records it; --resume refuses a "
        "stream swept with another kernel)",
    )
    def arrival_args(p):
        p.add_argument(
            "--arrival", default="bernoulli",
            choices=("bernoulli", "onoff", "mmpp"),
            help="packet arrival process: bernoulli (memoryless, the "
            "default), onoff (bursts separated by silence) or mmpp "
            "(bursts over a quiet background rate); see docs/workloads.md",
        )
        p.add_argument("--on-cycles", type=float, default=None,
                       help="mean burst length in cycles (onoff/mmpp)")
        p.add_argument("--off-cycles", type=float, default=None,
                       help="mean gap between bursts in cycles (onoff/mmpp)")
        p.add_argument("--quiet-scale", type=float, default=None,
                       help="off-state rate as a fraction of the burst "
                       "rate (mmpp; 0 = fully silent)")

    arrival_args(p_sweep)
    p_sweep.add_argument("--slo", type=float, default=None,
                         help="p99 head-latency ceiling in cycles; adds "
                         "per-tenant _slo_ok verdict columns for "
                         "tenant-tagged workloads")
    p_sweep.add_argument("--seeds", type=int, default=1,
                         help="replications per grid point")
    p_sweep.add_argument("--jobs", type=int, default=None,
                         help="worker processes (default: CPU count)")
    p_sweep.add_argument("--measure", type=int, default=8000)
    p_sweep.add_argument(
        "--out",
        help="aggregated-rows JSON path (default results/sweep_<APP|PATTERN>"
        ".json); partial rows stream to the matching .jsonl",
    )
    p_sweep.add_argument(
        "--resume", action="store_true",
        help="skip grid points already present in the .jsonl stream",
    )
    p_sweep.set_defaults(func=_cmd_sweep)
    p_farm = sub.add_parser(
        "farm",
        help="distributed sweep farm: content-addressed job queue, "
        "cooperating workers, idempotent merge (docs/farm.md)",
    )
    farm_sub = p_farm.add_subparsers(dest="farm_command", required=True)

    def farm_spec_args(p):
        p.add_argument(
            "--spec", required=True,
            help="queue directory, or a (prefix of a) spec hash under "
            "--root",
        )
        p.add_argument("--root", default="results/farm",
                       help="farm root holding <spec_hash>/ queues")

    p_fe = farm_sub.add_parser(
        "enumerate",
        help="create/extend the content-addressed queue for one sweep "
        "spec and print its directory",
    )
    p_fe.add_argument("--workload", type=_workload_name, default=None)
    p_fe.add_argument("--workload-file", default=None, metavar="PATH",
                      help="YAML/TSV workload spec file; its path rides "
                      "the hashed spec so farm workers self-load it")
    p_fe.add_argument("--file-workload", default=None, metavar="NAME",
                      help="which workload in --workload-file to farm "
                      "(default: the file's first definition)")
    p_fe.add_argument("--size", type=_mesh_size, default=None,
                      help="mesh size WxH (default: the paper's 4x4)")
    p_fe.add_argument("--designs", default="mesh,smart,dedicated",
                      type=_design_list)
    p_fe.add_argument("--loads",
                      help="comma-separated load points (default: the "
                      "workload's own axis defaults)")
    p_fe.add_argument("--seeds", type=int, default=1,
                      help="replications per grid point")
    p_fe.add_argument("--kernel", default="active", type=_kernel_name)
    p_fe.add_argument("--measure", type=int, default=8000)
    arrival_args(p_fe)
    p_fe.add_argument("--root", default="results/farm")
    p_fe.add_argument("--quiet", action="store_true",
                      help="print only the queue directory (for scripts)")
    p_fe.set_defaults(func=_cmd_farm_enumerate)

    p_fw = farm_sub.add_parser(
        "work",
        help="run worker process(es) over a queue; N invocations on any "
        "hosts sharing the filesystem cooperate",
    )
    farm_spec_args(p_fw)
    p_fw.add_argument("--worker", default=None,
                      help="worker id (default <host>-<pid>; must be "
                      "unique per concurrent worker)")
    p_fw.add_argument("--procs", type=int, default=1,
                      help="spawn N worker processes on this host")
    p_fw.add_argument("--max-points", type=int, default=None,
                      help="stop this worker after landing N points")
    p_fw.add_argument("--lease-ttl", type=float, default=600.0,
                      help="seconds before an unreleased lease counts as "
                      "crashed and may be stolen")
    p_fw.set_defaults(func=_cmd_farm_work)

    p_fm = farm_sub.add_parser(
        "merge",
        help="union all shards into merged.jsonl/.json/.md (idempotent; "
        "same outputs as a single-process sweep)",
    )
    farm_spec_args(p_fm)
    p_fm.add_argument("--out", default=None,
                      help="base path for the .json/.md reports "
                      "(default <queue>/merged)")
    p_fm.add_argument("--compact", action="store_true",
                      help="after merging, delete per-worker shards "
                      "(refused while fresh leases exist)")
    p_fm.add_argument("--expect-complete", action="store_true",
                      help="exit non-zero unless every grid point merged")
    p_fm.add_argument("--slo", type=float, default=None,
                      help="p99 head-latency ceiling in cycles; adds "
                      "per-tenant _slo_ok verdict columns for "
                      "tenant-tagged workloads")
    p_fm.set_defaults(func=_cmd_farm_merge)

    p_fs = farm_sub.add_parser(
        "status", help="point/lease/shard accounting for a queue"
    )
    farm_spec_args(p_fs)
    p_fs.add_argument("--lease-ttl", type=float, default=600.0)
    p_fs.add_argument("--expect-complete", action="store_true",
                      help="exit non-zero unless every grid point is done")
    p_fs.set_defaults(func=_cmd_farm_status)

    p_fi = farm_sub.add_parser(
        "import",
        help="adopt `repro sweep` --resume streams of the same hashed "
        "spec as farm shards",
    )
    farm_spec_args(p_fi)
    p_fi.add_argument("streams", nargs="+",
                      help="sweep .jsonl stream(s) with a matching "
                      "content-hashed header")
    p_fi.set_defaults(func=_cmd_farm_import)
    p_trace = sub.add_parser(
        "trace",
        help="replay a timestamped packet trace on every kernel and "
        "check bit-identity (docs/workloads.md)",
    )
    p_trace.add_argument("trace",
                         help="JSONL (cycle/src/dst objects) or header+CSV "
                         "capture; gem5/booksim-style field aliases accepted")
    p_trace.add_argument("--design", default="smart",
                         choices=("mesh", "smart", "dedicated"))
    p_trace.add_argument("--size", type=_mesh_size, default=None,
                         help="mesh size WxH (default: the paper's 4x4)")
    p_trace.add_argument("--drain-limit", type=int, default=100000)
    p_trace.add_argument("--no-batched", action="store_true",
                         help="skip the extra batched-engine lane")
    p_trace.set_defaults(func=_cmd_trace)
    p_scen = sub.add_parser(
        "scenario",
        help="time-multiplex 2+ apps on one fabric, charging SS V "
        "reconfiguration cost between phases (docs/workloads.md)",
    )
    p_scen.add_argument("phases", nargs="*", metavar="PHASE",
                        help="workload names in phase order (default: the "
                        "paper's Fig 1 sequence WLAN H264 VOPD)")
    p_scen.add_argument("--name", default=None,
                        help="scenario name (stream stem; default derived "
                        "from the phases)")
    p_scen.add_argument("--workload-file", default=None, metavar="PATH",
                        help="register this spec file's workloads first so "
                        "phases can name them")
    p_scen.add_argument("--design", default="smart",
                        choices=("mesh", "smart", "dedicated"))
    p_scen.add_argument("--kernel", default="active", type=_kernel_name)
    p_scen.add_argument("--size", type=_mesh_size, default=None,
                        help="mesh size WxH (default: the paper's 4x4)")
    p_scen.add_argument("--loads",
                        help="comma-separated drive level per phase "
                        "(default: each workload's default load)")
    p_scen.add_argument("--seeds", type=int, default=1,
                        help="replications of the whole phase sequence")
    p_scen.add_argument("--warmup", type=int, default=500)
    p_scen.add_argument("--measure", type=int, default=8000)
    p_scen.add_argument("--cycles-per-store", type=int, default=1,
                        help="cycles charged per reconfiguration store "
                        "instruction (SS V)")
    p_scen.add_argument("--out", default=None,
                        help="stream path (default results/scenario_"
                        "<NAME>.jsonl)")
    p_scen.add_argument("--resume", action="store_true",
                        help="reload seeds whose phase rows all landed in "
                        "the stream")
    p_scen.add_argument("--farm-root", default=None, metavar="ROOT",
                        help="also enumerate the import-only farm queue "
                        "under ROOT and print the import command")
    p_scen.set_defaults(func=_cmd_scenario)
    p_wl = sub.add_parser(
        "workloads",
        help="list the workload registry (apps + patterns + file workloads)",
    )
    p_wl.add_argument("--workload-file", default=None, metavar="PATH",
                      help="register this spec file's workloads before "
                      "listing")
    p_wl.set_defaults(func=_cmd_workloads)
    p_plot = sub.add_parser(
        "plot",
        help="render latency-vs-load curves from sweep .jsonl streams "
        "(requires matplotlib)",
    )
    p_plot.add_argument("streams", nargs="+",
                        help="one or more results/sweep_*.jsonl files")
    p_plot.add_argument("--out", default=None,
                        help="output PNG path (single stream only; default: "
                        "the stream path with a .png extension)")
    p_plot.add_argument("--title", default=None)
    p_plot.add_argument("--histogram", action="store_true",
                        help="render histogram-pooled tail-latency bands "
                        "(P50/P95/P99 per design) instead of mean curves")
    p_plot.set_defaults(func=_cmd_plot)
    sub.add_parser("apps").set_defaults(func=_cmd_apps)
    p_lint = sub.add_parser(
        "lint",
        help="determinism & bit-identity static checker "
        "(see docs/analysis.md)",
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(p_lint)
    p_lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> None:
    parser = build_parser()
    args = parser.parse_args(argv)
    args.func(args)


if __name__ == "__main__":
    main()
