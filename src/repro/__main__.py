"""Command-line interface: regenerate the paper's experiments.

Usage:
    python -m repro table1
    python -m repro table2
    python -m repro chip
    python -m repro fig1
    python -m repro fig7
    python -m repro fig10a [--measure N]
    python -m repro fig10b [--measure N]
    python -m repro run APP DESIGN [--measure N]
    python -m repro sweep [--app APP | --pattern P] [--loads ...] [--jobs N]
    python -m repro apps
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_table1(_args) -> None:
    from repro.circuits.link_design import table1
    from repro.eval.report import render_table

    rows = [
        {
            "variant": e.variant,
            "rate_gbps": e.data_rate_gbps,
            "max_hops": e.max_hops,
            "fj_per_b_mm": round(e.energy_fj_per_bit_mm, 1),
        }
        for e in table1()
    ]
    print(render_table(rows, title="Table I"))


def _cmd_table2(_args) -> None:
    from repro.config import TABLE_II_CONFIG as cfg

    print("Technology     %d nm" % cfg.technology_nm)
    print("Vdd, Freq      %.1f V, %.0f GHz" % (cfg.vdd, cfg.freq_hz / 1e9))
    print("Topology       %dx%d mesh" % (cfg.width, cfg.height))
    print("Channel width  %d bits" % cfg.flit_bits)
    print("Credit width   %d bits" % cfg.credit_bits)
    print("VCs per port   %d, %d-flit deep" % (cfg.vcs_per_port, cfg.vc_depth_flits))
    print("Packet size    %d bits" % cfg.packet_bits)
    print("Header width   %d bits (Head), %d bits (Body, Tail)"
          % (cfg.head_header_bits, cfg.body_header_bits))


def _cmd_chip(_args) -> None:
    from repro.circuits.signaling import chip_measurements

    vlr, full = chip_measurements()
    print("VLR:        %.1f Gb/s max, %.2f mW, %.0f fJ/b, %.0f ps/mm"
          % (vlr["max_rate_gbps"], vlr["power_mw"],
             vlr["energy_fj_per_bit"], vlr["delay_ps_per_mm"]))
    print("full-swing: %.1f Gb/s max, %.2f mW, %.0f fJ/b, %.0f ps/mm"
          % (full["max_rate_gbps"], full["power_mw"],
             full["energy_fj_per_bit"], full["delay_ps_per_mm"]))


def _cmd_fig7(_args) -> None:
    from repro.config import NocConfig
    from repro.core.noc_builder import build_smart_noc
    from repro.eval.report import render_table
    from repro.eval.scenarios import fig7_flows
    from repro.sim.traffic import ScriptedTraffic

    flows = fig7_flows()
    noc = build_smart_noc(
        NocConfig(), flows,
        traffic=ScriptedTraffic([(1, f.flow_id) for f in flows]),
    )
    noc.network.stats.measuring = True
    noc.network.run_cycles(100)
    rows = [
        {
            "flow": flows[p.flow_id].name,
            "stops": str(noc.network.stops_for_flow(flows[p.flow_id])),
            "head_latency": p.head_latency,
        }
        for p in sorted(noc.network.stats.measured_delivered,
                        key=lambda p: p.flow_id)
    ]
    print(render_table(rows, title="Fig 7"))


def _run_suite(measure: int):
    from repro.eval.experiments import run_suite

    return run_suite(warmup_cycles=1000, measure_cycles=measure)


def _cmd_fig10a(args) -> None:
    from repro.eval.experiments import fig10a_rows, headline_metrics
    from repro.eval.report import render_table

    suite = _run_suite(args.measure)
    print(render_table(fig10a_rows(suite), title="Fig 10a (cycles)"))
    metrics = headline_metrics(suite)
    print("saving vs mesh: %.1f%%; gap vs dedicated: %.2f cycles"
          % (100 * metrics.latency_saving_vs_mesh,
             metrics.gap_vs_dedicated_cycles))


def _cmd_fig10b(args) -> None:
    from repro.eval.experiments import fig10b_rows, headline_metrics
    from repro.eval.report import render_table

    suite = _run_suite(args.measure)
    print(render_table(fig10b_rows(suite), float_format="%.4f",
                       title="Fig 10b (W)"))
    print("mesh/smart power ratio: %.2fx"
          % headline_metrics(suite).power_ratio_mesh_over_smart)


def _cmd_run(args) -> None:
    from repro.eval.experiments import run_app

    experiment = run_app(args.app, args.design, measure_cycles=args.measure)
    print("%s on %s: %.2f cycles avg latency, %.2f mW"
          % (experiment.app, experiment.design,
             experiment.mean_latency, experiment.power.total_w * 1e3))


def _design_list(value: str) -> List[str]:
    """argparse type for --designs: validate names before workers spawn."""
    import argparse

    from repro.eval.designs import DESIGNS

    designs = [d.strip() for d in value.split(",") if d.strip()]
    bad = [d for d in designs if d not in DESIGNS]
    if bad or not designs:
        raise argparse.ArgumentTypeError(
            "unknown design(s) %s (choose from %s)"
            % (",".join(bad) or "<empty>", ", ".join(DESIGNS))
        )
    return designs


def _cmd_sweep(args) -> None:
    import os

    from repro.eval.report import render_table
    from repro.eval.sweeps import (
        format_sweep_rows,
        run_load_sweep,
        run_pattern_sweep,
        saturation_load,
        write_sweep_json,
    )

    designs = args.designs
    loads = [float(x) for x in args.loads.split(",")] if args.loads else None
    seeds = tuple(range(1, args.seeds + 1))
    source = args.pattern or args.app
    out = args.out or os.path.join("results", "sweep_%s.json" % source)
    stream_path = os.path.splitext(out)[0] + ".jsonl"
    if args.pattern:
        load_points = loads or [0.01, 0.02, 0.05, 0.1, 0.2]
        title = "Latency vs injection rate (%s, packets/cycle/node)" % args.pattern
    else:
        load_points = loads or [1.0, 2.0, 4.0, 8.0, 16.0, 32.0]
        title = "Latency vs load (%s, x mapped bandwidth)" % args.app
    total = len(designs) * len(load_points) * len(seeds)
    if args.resume and os.path.exists(stream_path):
        from repro.eval.sweeps import read_sweep_stream

        grid = {
            (d, float(load), int(s))
            for d in designs for load in load_points for s in seeds
        }
        streamed = {
            (p["design"], float(p["load"]), int(p["seed"]))
            for p in read_sweep_stream(stream_path)
        }
        total -= len(grid & streamed)
    progress = {"done": 0}

    def on_result(point) -> None:
        progress["done"] += 1
        print("  [%d/%d] %-10s load=%-8g seed=%d  %s" % (
            progress["done"], total, point["design"], point["load"],
            point["seed"],
            "saturated" if point["saturated"]
            else "%.2f cyc" % point["summary"].mean_head_latency,
        ))

    common = dict(
        designs=designs,
        seeds=seeds,
        processes=args.jobs,
        measure_cycles=args.measure,
        on_result=on_result,
        stream_path=stream_path,
        resume=args.resume,
    )
    if args.pattern:
        rows = run_pattern_sweep(args.pattern, rates=load_points, **common)
    else:
        rows = run_load_sweep(args.app, scales=load_points, **common)
    print(render_table(format_sweep_rows(rows), title=title))
    print("(* = saturated: the run failed to drain its measured packets)")
    for design in designs:
        knee = saturation_load(rows, design)
        if knee is not None:
            print("%-10s saturates at load %g" % (design, knee))
    meta = {
        "app": None if args.pattern else args.app,
        "pattern": args.pattern,
        "designs": list(designs),
        "loads": load_points,
        "seeds": list(seeds),
        "measure_cycles": args.measure,
    }
    write_sweep_json(out, rows, meta=meta)
    print("wrote %s (aggregated rows); streamed grid points: %s"
          % (out, stream_path))


def _cmd_apps(_args) -> None:
    from repro.apps.registry import PAPER_APP_ORDER, evaluation_task_graph

    for name in PAPER_APP_ORDER:
        graph = evaluation_task_graph(name)
        print("%-8s %2d tasks %2d flows %8.0f MB/s total"
              % (name, graph.num_tasks, graph.num_edges,
                 graph.total_bandwidth_bps() / 1e6))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate experiments from the SMART DATE'13 paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("table1").set_defaults(func=_cmd_table1)
    sub.add_parser("table2").set_defaults(func=_cmd_table2)
    sub.add_parser("chip").set_defaults(func=_cmd_chip)
    sub.add_parser("fig7").set_defaults(func=_cmd_fig7)
    for name, func in (("fig10a", _cmd_fig10a), ("fig10b", _cmd_fig10b)):
        p = sub.add_parser(name)
        p.add_argument("--measure", type=int, default=20000)
        p.set_defaults(func=func)
    p_run = sub.add_parser("run")
    p_run.add_argument("app")
    p_run.add_argument("design", choices=("mesh", "smart", "dedicated"))
    p_run.add_argument("--measure", type=int, default=20000)
    p_run.set_defaults(func=_cmd_run)
    p_sweep = sub.add_parser(
        "sweep",
        help="multi-core latency-vs-load sweep (to saturation and beyond)",
    )
    sweep_source = p_sweep.add_mutually_exclusive_group()
    sweep_source.add_argument("--app", default="VOPD")
    sweep_source.add_argument(
        "--pattern",
        choices=("uniform", "transpose", "bit_complement", "hotspot"),
        help="sweep a synthetic pattern instead of a mapped app",
    )
    p_sweep.add_argument(
        "--designs",
        default="mesh,smart,dedicated",
        type=_design_list,
        help="comma-separated subset of: mesh, smart, dedicated",
    )
    p_sweep.add_argument(
        "--loads",
        help="comma-separated load points: bandwidth scales for apps, "
        "packets/cycle/node for patterns",
    )
    p_sweep.add_argument("--seeds", type=int, default=1,
                         help="replications per grid point")
    p_sweep.add_argument("--jobs", type=int, default=None,
                         help="worker processes (default: CPU count)")
    p_sweep.add_argument("--measure", type=int, default=8000)
    p_sweep.add_argument(
        "--out",
        help="aggregated-rows JSON path (default results/sweep_<APP|PATTERN>"
        ".json); partial rows stream to the matching .jsonl",
    )
    p_sweep.add_argument(
        "--resume", action="store_true",
        help="skip grid points already present in the .jsonl stream",
    )
    p_sweep.set_defaults(func=_cmd_sweep)
    sub.add_parser("apps").set_defaults(func=_cmd_apps)
    return parser


def main(argv: Optional[List[str]] = None) -> None:
    parser = build_parser()
    args = parser.parse_args(argv)
    args.func(args)


if __name__ == "__main__":
    main()
