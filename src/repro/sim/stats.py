"""Latency statistics and power-relevant event counters."""

from __future__ import annotations

import dataclasses
import math
import statistics
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.sim.packet import Packet

# ----------------------------------------------------------------------
# Latency histograms (log-linear buckets, exact-to-bucket percentiles)
# ----------------------------------------------------------------------

#: Sub-bucket resolution: 2**_HIST_SUB_BITS buckets per power of two.
_HIST_SUB_BITS = 3
_HIST_SUB = 1 << _HIST_SUB_BITS
#: Latencies at or above 2**_HIST_MAX_OCTAVE cycles clamp into the last
#: bucket (a packet stuck for a million cycles is "saturated", not data).
_HIST_MAX_OCTAVE = 20
#: Total bucket count: values 1..7 exact, then 8 sub-buckets for each of
#: the octaves [2**3, 2**20), plus one clamp bucket.
HIST_NUM_BUCKETS = (
    (_HIST_SUB - 1) + (_HIST_MAX_OCTAVE - _HIST_SUB_BITS) * _HIST_SUB + 1
)


def hist_bucket(value: int) -> int:
    """Bucket index for a latency of ``value`` cycles (``value >= 1``).

    Buckets 0-6 hold the exact values 1-7; past that each power-of-two
    octave ``[2**e, 2**(e+1))`` splits into 8 equal sub-buckets of width
    ``2**(e-3)``, so the relative bucket width never exceeds 12.5%.
    """
    if value < _HIST_SUB:
        return value - 1
    exponent = value.bit_length() - 1
    if exponent >= _HIST_MAX_OCTAVE:
        return HIST_NUM_BUCKETS - 1
    sub = (value >> (exponent - _HIST_SUB_BITS)) & (_HIST_SUB - 1)
    return (_HIST_SUB - 1) + (exponent - _HIST_SUB_BITS) * _HIST_SUB + sub


def hist_bucket_bounds(bucket: int) -> Tuple[int, float]:
    """Inclusive ``(lowest, highest)`` latency covered by ``bucket``.

    The clamp bucket's upper bound is ``inf``; every other bucket is
    finite, and consecutive buckets tile the integers with no gaps.
    """
    if bucket < _HIST_SUB - 1:
        return (bucket + 1, float(bucket + 1))
    if bucket >= HIST_NUM_BUCKETS - 1:
        return (1 << _HIST_MAX_OCTAVE, math.inf)
    rel = bucket - (_HIST_SUB - 1)
    exponent = _HIST_SUB_BITS + rel // _HIST_SUB
    sub = rel % _HIST_SUB
    width = 1 << (exponent - _HIST_SUB_BITS)
    low = (1 << exponent) + sub * width
    return (low, float(low + width - 1))


class LatencyHistogram:
    """Fixed-bucket latency histogram with exact-to-bucket percentiles.

    A compact array of :data:`HIST_NUM_BUCKETS` counts (log-linear
    buckets, see :func:`hist_bucket`).  Histograms from different seeds,
    lanes or farm shards **pool losslessly** by adding counts, so the
    aggregate percentile is the exact pooled order statistic resolved to
    bucket granularity — not an estimate averaged over replications.
    """

    __slots__ = ("counts",)

    def __init__(self, counts: Optional[List[int]] = None):
        if counts is None:
            counts = [0] * HIST_NUM_BUCKETS
        elif len(counts) != HIST_NUM_BUCKETS:
            raise ValueError(
                "expected %d bucket counts, got %d"
                % (HIST_NUM_BUCKETS, len(counts))
            )
        self.counts = counts

    @classmethod
    def from_values(cls, values: Iterable[int]) -> "LatencyHistogram":
        hist = cls()
        for value in values:
            hist.counts[hist_bucket(value)] += 1
        return hist

    def add(self, value: int) -> None:
        self.counts[hist_bucket(value)] += 1

    def copy(self) -> "LatencyHistogram":
        return LatencyHistogram(list(self.counts))

    def merge(self, other: "LatencyHistogram") -> None:
        counts = self.counts
        for bucket, count in enumerate(other.counts):
            if count:
                counts[bucket] += count

    @property
    def total(self) -> int:
        return sum(self.counts)

    def percentile(self, fraction: float) -> float:
        """Upper edge of the bucket holding the nearest-rank percentile.

        NaN when the histogram is empty.  The reported value is within
        one bucket width of the exact order statistic (<= 12.5%
        relative error by construction); :meth:`percentile_bounds`
        returns the bracketing interval.
        """
        return self.percentile_bounds(fraction)[1]

    def percentile_bounds(self, fraction: float) -> Tuple[float, float]:
        """``(low, high)`` bounds of the nearest-rank percentile."""
        total = self.total
        if total == 0:
            return (math.nan, math.nan)
        rank = min(total, max(1, math.ceil(fraction * total)))
        running = 0
        for bucket, count in enumerate(self.counts):
            running += count
            if running >= rank:
                low, high = hist_bucket_bounds(bucket)
                return (float(low), high)
        raise AssertionError("rank beyond histogram total")

    def to_sparse(self) -> Dict[str, int]:
        """Sparse ``{bucket_index: count}`` dict for JSON streams."""
        return {
            str(bucket): count
            for bucket, count in enumerate(self.counts)
            if count
        }

    @classmethod
    def from_sparse(cls, sparse: Dict[str, int]) -> "LatencyHistogram":
        hist = cls()
        for bucket, count in sparse.items():
            hist.counts[int(bucket)] = int(count)
        return hist

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyHistogram):
            return NotImplemented
        return self.counts == other.counts

    def __repr__(self) -> str:
        return "LatencyHistogram(total=%d)" % self.total


@dataclasses.dataclass
class EventCounters:
    """Activity counts consumed by the power model (Fig 10b).

    All counts are per-flit events unless noted.  ``link_flit_mm`` and
    ``credit_mm`` accumulate millimetres of wire driven (one hop = 1 mm).
    """

    buffer_writes: int = 0
    buffer_reads: int = 0
    sa_requests: int = 0
    sa_grants: int = 0
    crossbar_traversals: int = 0
    pipeline_latches: int = 0
    link_flit_mm: float = 0.0
    credit_events: int = 0
    credit_crossbar_traversals: int = 0
    credit_mm: float = 0.0
    #: Router-cycles in which the router clock was running (not gated).
    clock_router_cycles: int = 0
    #: Port-cycles of clocked (buffered, non-gated) ports.
    clock_port_cycles: int = 0
    #: Router-cycles elapsed in total (active or gated), for utilisation.
    total_router_cycles: int = 0
    cycles: int = 0

    def snapshot(self) -> "EventCounters":
        return dataclasses.replace(self)

    def delta(self, earlier: "EventCounters") -> "EventCounters":
        """Counts accumulated since ``earlier`` (a prior snapshot)."""
        changes = {}
        for field in dataclasses.fields(self):
            changes[field.name] = getattr(self, field.name) - getattr(
                earlier, field.name
            )
        return EventCounters(**changes)


@dataclasses.dataclass
class LatencySummary:
    """Aggregate latency numbers over a set of delivered packets (the
    per-app "average network latency" bars of Fig 10a)."""

    count: int
    mean_head_latency: float
    mean_packet_latency: float
    mean_network_latency: float
    p95_head_latency: float
    max_head_latency: int
    min_head_latency: int
    #: Tail percentiles of the head latency.  Computed from the sorted
    #: sample within one run; exact-to-bucket from pooled histograms
    #: when replications aggregate.  NaN in legacy rows.
    p50_head_latency: float = math.nan
    p99_head_latency: float = math.nan
    p999_head_latency: float = math.nan
    #: Full head-latency distribution (None in legacy rows).
    histogram: Optional[LatencyHistogram] = None

    @staticmethod
    def empty() -> "LatencySummary":
        return LatencySummary(0, math.nan, math.nan, math.nan, math.nan, 0, 0)


def _percentile(sorted_values: List[int], fraction: float) -> float:
    if not sorted_values:
        return math.nan
    index = fraction * (len(sorted_values) - 1)
    low = int(math.floor(index))
    high = int(math.ceil(index))
    if low == high:
        return float(sorted_values[low])
    weight = index - low
    return sorted_values[low] * (1 - weight) + sorted_values[high] * weight


def _summarize(
    packets: List[Packet], histogram: Optional[LatencyHistogram] = None
) -> LatencySummary:
    """One :class:`LatencySummary` over a delivered-packet list.

    Percentiles are exact order statistics of the sorted sample; the
    attached ``histogram`` (built here when not supplied) is what lets
    replications pool without losing the tail.
    """
    if not packets:
        return LatencySummary.empty()
    heads = sorted(p.head_latency for p in packets)
    if histogram is None:
        histogram = LatencyHistogram.from_values(heads)
    return LatencySummary(
        count=len(packets),
        mean_head_latency=statistics.fmean(heads),
        mean_packet_latency=statistics.fmean(
            p.packet_latency for p in packets
        ),
        mean_network_latency=statistics.fmean(
            p.network_latency for p in packets
        ),
        p95_head_latency=_percentile(heads, 0.95),
        max_head_latency=heads[-1],
        min_head_latency=heads[0],
        p50_head_latency=_percentile(heads, 0.50),
        p99_head_latency=_percentile(heads, 0.99),
        p999_head_latency=_percentile(heads, 0.999),
        histogram=histogram,
    )


class StatsCollector:
    """Tracks created and delivered packets inside a measurement window.

    ``tenants`` (flow_id -> tenant label) opts delivered packets into
    per-tenant accounting (:meth:`per_tenant_summary`); flows absent
    from the map are untagged and appear only in the global summary.
    """

    def __init__(self, tenants: Optional[Dict[int, str]] = None) -> None:
        self._measured: Dict[int, Packet] = {}
        self._delivered: List[Packet] = []
        self.created_total = 0
        self.delivered_total = 0
        self.measuring = False
        #: flow_id -> tenant label for per-tenant SLO accounting.
        self.tenants: Dict[int, str] = dict(tenants or {})
        #: Incremental head-latency histogram over measured deliveries.
        self.hist = LatencyHistogram()
        #: Destination node -> measured flits delivered there (the
        #: per-node delivered-bandwidth counter; divide by the measured
        #: window for flits/cycle).
        self.node_flits: Dict[int, int] = {}

    def on_create(self, packet: Packet) -> None:
        self.created_total += 1
        if self.measuring:
            self._measured[packet.pid] = packet

    def on_deliver(self, packet: Packet) -> None:
        self.delivered_total += 1
        if packet.pid in self._measured:
            self._delivered.append(self._measured.pop(packet.pid))
            self.hist.counts[hist_bucket(packet.head_latency)] += 1
            dst = packet.dst
            self.node_flits[dst] = (
                self.node_flits.get(dst, 0) + packet.size_flits
            )

    @property
    def outstanding_measured(self) -> int:
        return len(self._measured)

    @property
    def measured_delivered(self) -> List[Packet]:
        return list(self._delivered)

    def summary(self) -> LatencySummary:
        return _summarize(self._delivered, histogram=self.hist.copy())

    def per_flow_summary(self) -> Dict[int, LatencySummary]:
        by_flow: Dict[int, List[Packet]] = {}
        for packet in self._delivered:
            by_flow.setdefault(packet.flow_id, []).append(packet)
        return {
            flow_id: _summarize(packets)
            for flow_id, packets in sorted(by_flow.items())
        }

    def per_tenant_summary(self) -> Dict[str, LatencySummary]:
        """One summary (with histogram) per tenant label, sorted.

        Empty when no flow carries a tenant tag.  Packets of untagged
        flows are excluded — they are background from the tenants'
        point of view and still count in :meth:`summary`.
        """
        if not self.tenants:
            return {}
        by_tenant: Dict[str, List[Packet]] = {}
        tenants = self.tenants
        for packet in self._delivered:
            tenant = tenants.get(packet.flow_id)
            if tenant is not None:
                by_tenant.setdefault(tenant, []).append(packet)
        return {
            tenant: _summarize(packets)
            for tenant, packets in sorted(by_tenant.items())
        }


@dataclasses.dataclass
class SimResult:
    """Outcome of one simulation run: latency summaries (Fig 10a), the
    power-relevant event counters (Fig 10b) and drain status."""

    summary: LatencySummary
    per_flow: Dict[int, LatencySummary]
    counters: EventCounters
    measured_cycles: int
    total_cycles: int
    drained: bool
    undelivered_measured: int = 0
    #: Tenant label -> summary, for tenant-tagged flow sets (empty
    #: otherwise); see :meth:`StatsCollector.per_tenant_summary`.
    per_tenant: Dict[str, LatencySummary] = dataclasses.field(
        default_factory=dict
    )
    #: Destination node -> measured flits delivered there.
    node_delivered_flits: Dict[int, int] = dataclasses.field(
        default_factory=dict
    )

    @property
    def mean_latency(self) -> float:
        """Headline 'average network latency' (head-flit, Fig 10a)."""
        return self.summary.mean_head_latency

    def node_bandwidth(self) -> Dict[int, float]:
        """Delivered bandwidth per destination node, in flits/cycle
        over the measured window (nodes with no measured deliveries are
        absent)."""
        if self.measured_cycles <= 0:
            return {}
        return {
            node: flits / self.measured_cycles
            for node, flits in sorted(self.node_delivered_flits.items())
        }


def accepted_flits_per_cycle(result: SimResult, flits_per_packet: int) -> float:
    """Delivered measured flits per measured cycle."""
    if result.measured_cycles <= 0:
        return 0.0
    return result.summary.count * flits_per_packet / result.measured_cycles


def aggregate_summaries(summaries: List[LatencySummary]) -> LatencySummary:
    """Pool per-seed replications into one summary.

    Means are combined exactly (weighted by delivered-packet count).
    When every replication carries a histogram, the histograms pool by
    adding bucket counts and all percentiles (p50/p95/p99/p99.9) are the
    **exact pooled order statistics** resolved to bucket granularity
    (<= 12.5% relative bucket width; see :class:`LatencyHistogram`).
    Only when a legacy replication lacks its histogram do percentiles
    fall back to the old count-weighted mean of per-replication
    percentiles, which is an estimate, not the pooled order statistic.
    """
    counted = [s for s in summaries if s.count > 0]
    if not counted:
        return LatencySummary.empty()
    total = sum(s.count for s in counted)

    def wmean(getter: Callable[[LatencySummary], float]) -> float:
        return sum(getter(s) * s.count for s in counted) / total

    pooled: Optional[LatencyHistogram] = None
    if all(s.histogram is not None for s in counted):
        pooled = LatencyHistogram()
        for s in counted:
            assert s.histogram is not None
            pooled.merge(s.histogram)

    def pct(fraction: float, getter: Callable[[LatencySummary], float]) -> float:
        if pooled is not None:
            return pooled.percentile(fraction)
        return wmean(getter)

    return LatencySummary(
        count=total,
        mean_head_latency=wmean(lambda s: s.mean_head_latency),
        mean_packet_latency=wmean(lambda s: s.mean_packet_latency),
        mean_network_latency=wmean(lambda s: s.mean_network_latency),
        p95_head_latency=pct(0.95, lambda s: s.p95_head_latency),
        max_head_latency=max(s.max_head_latency for s in counted),
        min_head_latency=min(s.min_head_latency for s in counted),
        p50_head_latency=pct(0.50, lambda s: s.p50_head_latency),
        p99_head_latency=pct(0.99, lambda s: s.p99_head_latency),
        p999_head_latency=pct(0.999, lambda s: s.p999_head_latency),
        histogram=pooled,
    )


def slo_verdicts(
    per_tenant: Dict[str, LatencySummary], slo: Dict[str, float]
) -> Dict[str, bool]:
    """Per-tenant SLO verdicts: does each tenant's p99 head latency meet
    its threshold?

    ``slo`` maps tenant label -> maximum acceptable p99 head latency in
    cycles.  The p99 is read from the tenant's histogram when present
    (exact-to-bucket, pools across seeds) and from
    ``p99_head_latency`` otherwise; a tenant with no delivered packets
    or no threshold is omitted from the result.
    """
    verdicts: Dict[str, bool] = {}
    for tenant, threshold in sorted(slo.items()):
        summary = per_tenant.get(tenant)
        if summary is None or summary.count == 0:
            continue
        if summary.histogram is not None:
            p99 = summary.histogram.percentile(0.99)
        else:
            p99 = summary.p99_head_latency
        verdicts[tenant] = bool(p99 <= threshold)
    return verdicts


#: Two-sided 95% Student-t critical values by degrees of freedom; the
#: normal 1.96 takes over past df=30.  Multi-seed sweeps pool 2-30
#: replications, where the normal approximation understates the
#: interval badly (df=1: 12.7x).
_T95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
    2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
    2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
    2.048, 2.045, 2.042,
)


def ci95_halfwidth(values: List[float]) -> float:
    """Half-width of the 95% confidence interval of the mean.

    Student-t over the seed replications (NaN entries dropped); NaN when
    fewer than two finite values remain, so single-seed sweeps render
    "no interval" rather than a spurious zero.
    """
    finite = [v for v in values if not math.isnan(v)]
    n = len(finite)
    if n < 2:
        return math.nan
    mean = sum(finite) / n
    var = sum((v - mean) ** 2 for v in finite) / (n - 1)
    t = _T95[n - 2] if n - 1 <= len(_T95) else 1.96
    return t * math.sqrt(var / n)
