"""Latency statistics and power-relevant event counters."""

from __future__ import annotations

import dataclasses
import math
import statistics
from typing import Dict, List, Optional

from repro.sim.packet import Packet


@dataclasses.dataclass
class EventCounters:
    """Activity counts consumed by the power model (Fig 10b).

    All counts are per-flit events unless noted.  ``link_flit_mm`` and
    ``credit_mm`` accumulate millimetres of wire driven (one hop = 1 mm).
    """

    buffer_writes: int = 0
    buffer_reads: int = 0
    sa_requests: int = 0
    sa_grants: int = 0
    crossbar_traversals: int = 0
    pipeline_latches: int = 0
    link_flit_mm: float = 0.0
    credit_events: int = 0
    credit_crossbar_traversals: int = 0
    credit_mm: float = 0.0
    #: Router-cycles in which the router clock was running (not gated).
    clock_router_cycles: int = 0
    #: Port-cycles of clocked (buffered, non-gated) ports.
    clock_port_cycles: int = 0
    #: Router-cycles elapsed in total (active or gated), for utilisation.
    total_router_cycles: int = 0
    cycles: int = 0

    def snapshot(self) -> "EventCounters":
        return dataclasses.replace(self)

    def delta(self, earlier: "EventCounters") -> "EventCounters":
        """Counts accumulated since ``earlier`` (a prior snapshot)."""
        changes = {}
        for field in dataclasses.fields(self):
            changes[field.name] = getattr(self, field.name) - getattr(
                earlier, field.name
            )
        return EventCounters(**changes)


@dataclasses.dataclass
class LatencySummary:
    """Aggregate latency numbers over a set of delivered packets (the
    per-app "average network latency" bars of Fig 10a)."""

    count: int
    mean_head_latency: float
    mean_packet_latency: float
    mean_network_latency: float
    p95_head_latency: float
    max_head_latency: int
    min_head_latency: int

    @staticmethod
    def empty() -> "LatencySummary":
        return LatencySummary(0, math.nan, math.nan, math.nan, math.nan, 0, 0)


def _percentile(sorted_values: List[int], fraction: float) -> float:
    if not sorted_values:
        return math.nan
    index = fraction * (len(sorted_values) - 1)
    low = int(math.floor(index))
    high = int(math.ceil(index))
    if low == high:
        return float(sorted_values[low])
    weight = index - low
    return sorted_values[low] * (1 - weight) + sorted_values[high] * weight


class StatsCollector:
    """Tracks created and delivered packets inside a measurement window."""

    def __init__(self) -> None:
        self._measured: Dict[int, Packet] = {}
        self._delivered: List[Packet] = []
        self.created_total = 0
        self.delivered_total = 0
        self.measuring = False

    def on_create(self, packet: Packet) -> None:
        self.created_total += 1
        if self.measuring:
            self._measured[packet.pid] = packet

    def on_deliver(self, packet: Packet) -> None:
        self.delivered_total += 1
        if packet.pid in self._measured:
            self._delivered.append(self._measured.pop(packet.pid))

    @property
    def outstanding_measured(self) -> int:
        return len(self._measured)

    @property
    def measured_delivered(self) -> List[Packet]:
        return list(self._delivered)

    def summary(self) -> LatencySummary:
        if not self._delivered:
            return LatencySummary.empty()
        heads = sorted(p.head_latency for p in self._delivered)
        packets = [p.packet_latency for p in self._delivered]
        networks = [p.network_latency for p in self._delivered]
        return LatencySummary(
            count=len(self._delivered),
            mean_head_latency=statistics.fmean(heads),
            mean_packet_latency=statistics.fmean(packets),
            mean_network_latency=statistics.fmean(networks),
            p95_head_latency=_percentile(heads, 0.95),
            max_head_latency=heads[-1],
            min_head_latency=heads[0],
        )

    def per_flow_summary(self) -> Dict[int, LatencySummary]:
        by_flow: Dict[int, List[Packet]] = {}
        for packet in self._delivered:
            by_flow.setdefault(packet.flow_id, []).append(packet)
        result = {}
        for flow_id, packets in sorted(by_flow.items()):
            heads = sorted(p.head_latency for p in packets)
            result[flow_id] = LatencySummary(
                count=len(packets),
                mean_head_latency=statistics.fmean(heads),
                mean_packet_latency=statistics.fmean(
                    p.packet_latency for p in packets
                ),
                mean_network_latency=statistics.fmean(
                    p.network_latency for p in packets
                ),
                p95_head_latency=_percentile(heads, 0.95),
                max_head_latency=heads[-1],
                min_head_latency=heads[0],
            )
        return result


@dataclasses.dataclass
class SimResult:
    """Outcome of one simulation run: latency summaries (Fig 10a), the
    power-relevant event counters (Fig 10b) and drain status."""

    summary: LatencySummary
    per_flow: Dict[int, LatencySummary]
    counters: EventCounters
    measured_cycles: int
    total_cycles: int
    drained: bool
    undelivered_measured: int = 0

    @property
    def mean_latency(self) -> float:
        """Headline 'average network latency' (head-flit, Fig 10a)."""
        return self.summary.mean_head_latency


def accepted_flits_per_cycle(result: SimResult, flits_per_packet: int) -> float:
    """Delivered measured flits per measured cycle."""
    if result.measured_cycles <= 0:
        return 0.0
    return result.summary.count * flits_per_packet / result.measured_cycles


def aggregate_summaries(summaries: List[LatencySummary]) -> LatencySummary:
    """Pool per-seed replications into one summary.

    Means are combined exactly (weighted by delivered-packet count); the
    p95 is a count-weighted mean of the replication p95s, which is only an
    estimate of the pooled percentile — adequate for sweep plots, noted
    here so nobody mistakes it for the exact pooled order statistic.
    """
    counted = [s for s in summaries if s.count > 0]
    if not counted:
        return LatencySummary.empty()
    total = sum(s.count for s in counted)

    def wmean(getter) -> float:
        return sum(getter(s) * s.count for s in counted) / total

    return LatencySummary(
        count=total,
        mean_head_latency=wmean(lambda s: s.mean_head_latency),
        mean_packet_latency=wmean(lambda s: s.mean_packet_latency),
        mean_network_latency=wmean(lambda s: s.mean_network_latency),
        p95_head_latency=wmean(lambda s: s.p95_head_latency),
        max_head_latency=max(s.max_head_latency for s in counted),
        min_head_latency=min(s.min_head_latency for s in counted),
    )


#: Two-sided 95% Student-t critical values by degrees of freedom; the
#: normal 1.96 takes over past df=30.  Multi-seed sweeps pool 2-30
#: replications, where the normal approximation understates the
#: interval badly (df=1: 12.7x).
_T95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
    2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
    2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
    2.048, 2.045, 2.042,
)


def ci95_halfwidth(values: List[float]) -> float:
    """Half-width of the 95% confidence interval of the mean.

    Student-t over the seed replications (NaN entries dropped); NaN when
    fewer than two finite values remain, so single-seed sweeps render
    "no interval" rather than a spurious zero.
    """
    finite = [v for v in values if not math.isnan(v)]
    n = len(finite)
    if n < 2:
        return math.nan
    mean = sum(finite) / n
    var = sum((v - mean) ** 2 for v in finite) / (n - 1)
    t = _T95[n - 2] if n - 1 <= len(_T95) else 1.96
    return t * math.sqrt(var / n)
