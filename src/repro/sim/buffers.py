"""Virtual-channel input buffers and free-VC tracking queues.

Flow control is virtual cut-through (paper §IV): a VC is allocated to a
whole packet, the VC depth (10 flits) always covers a full packet (8 flits),
and the upstream segment start keeps a queue of free VC ids for the segment
endpoint.  When the tail flit leaves a VC, the VC id travels back on the
reverse credit mesh and is re-enqueued at the segment start.
"""

from __future__ import annotations

import collections
import heapq
import itertools
from typing import Deque, List, Optional, Tuple

from repro.sim.packet import Flit


class VirtualChannel:
    """One FIFO virtual channel of an input port."""

    def __init__(self, vc_id: int, depth: int):
        self.vc_id = vc_id
        self.depth = depth
        self._fifo: Deque[Flit] = collections.deque()
        #: Cycle at which the oldest flit becomes eligible for switch
        #: allocation (arrival + 1 cycle of buffer write + 1 cycle to the
        #: SA stage).
        self._eligible: Deque[int] = collections.deque()
        #: True while a packet occupies this VC (from head write until the
        #: tail is read out).
        self.busy = False

    def __len__(self) -> int:
        return len(self._fifo)

    @property
    def empty(self) -> bool:
        return not self._fifo

    @property
    def full(self) -> bool:
        return len(self._fifo) >= self.depth

    def write(self, flit: Flit, arrival_cycle: int) -> None:
        """Buffer-write stage: store an arriving flit.

        A flit arriving at the end of ``arrival_cycle`` is written during
        ``arrival_cycle + 1`` and may arbitrate from ``arrival_cycle + 2``.
        """
        if self.full:
            raise OverflowError(
                "VC %d overflow: virtual cut-through guarantees violated"
                % self.vc_id
            )
        if flit.is_head:
            if self.busy:
                raise RuntimeError(
                    "head flit written to busy VC %d" % self.vc_id
                )
            self.busy = True
        flit.vc = self.vc_id
        self._fifo.append(flit)
        self._eligible.append(arrival_cycle + 2)

    def front(self) -> Optional[Flit]:
        return self._fifo[0] if self._fifo else None

    def front_eligible(self, cycle: int) -> bool:
        """True if the oldest flit has cleared the BW stage by ``cycle``."""
        return bool(self._eligible) and self._eligible[0] <= cycle

    def read(self) -> Flit:
        """Switch-traversal stage: pop the oldest flit."""
        if not self._fifo:
            raise IndexError("read from empty VC %d" % self.vc_id)
        self._eligible.popleft()
        flit = self._fifo.popleft()
        if flit.is_tail:
            self.busy = False
        return flit


class InputBuffer:
    """The VC buffers of one router input port."""

    def __init__(self, num_vcs: int, depth: int):
        if num_vcs < 1:
            raise ValueError("need at least one VC")
        self.vcs: List[VirtualChannel] = [
            VirtualChannel(v, depth) for v in range(num_vcs)
        ]

    def vc(self, vc_id: int) -> VirtualChannel:
        return self.vcs[vc_id]

    @property
    def empty(self) -> bool:
        return all(vc.empty for vc in self.vcs)

    def occupancy(self) -> int:
        """Total buffered flits across VCs (for power/stats)."""
        return sum(len(vc) for vc in self.vcs)


class FreeVcQueue:
    """Free-VC ids available at the endpoint of a segment.

    Lives at the segment start (a router output port, or the NIC for the
    injection segment).  Under SMART this queue "might actually be tracking
    the VCs at an input port of a router multiple hops away" (§IV).
    Credits become usable only after the reverse-mesh credit latency, so
    returns are timestamped.
    """

    def __init__(self, num_vcs: int):
        self._ready: Deque[int] = collections.deque(range(num_vcs))
        #: Min-heap of (usable_cycle, release_seq, vc): credits may return
        #: out of order, and a FIFO here would head-of-line-block a
        #: later-ready VC id behind an earlier release with a later
        #: usable_cycle.  The sequence number keeps ties FIFO.
        self._pending: List[Tuple[int, int, int]] = []
        self._release_seq = itertools.count()
        self.num_vcs = num_vcs

    def _promote(self, cycle: int) -> None:
        while self._pending and self._pending[0][0] <= cycle:
            self._ready.append(heapq.heappop(self._pending)[2])

    def available(self, cycle: int) -> bool:
        self._promote(cycle)
        return bool(self._ready)

    def acquire(self, cycle: int) -> int:
        """Dequeue a free VC id for a departing head flit."""
        self._promote(cycle)
        if not self._ready:
            raise IndexError("no free VC available at cycle %d" % cycle)
        return self._ready.popleft()

    def release(self, vc_id: int, usable_cycle: int) -> None:
        """Re-enqueue a VC id delivered by a returning credit."""
        if not 0 <= vc_id < self.num_vcs:
            raise ValueError("credit for unknown VC %d" % vc_id)
        heapq.heappush(
            self._pending, (usable_cycle, next(self._release_seq), vc_id)
        )

    def outstanding(self) -> int:
        """VCs currently held by in-flight packets."""
        return self.num_vcs - len(self._ready) - len(self._pending)
