"""Batched multi-seed execution of the event kernel.

Load sweeps are seed-replicated by construction: N replications of the
same built workload (same mapping, routes and presets — only the RNG
seeds differ) advance through N identical event loops and pay the
per-event Python overhead N times.  :class:`BatchedEventNetworks`
adopts N freshly-built ``kernel="event"`` :class:`~repro.sim.network.
Network` lanes and advances all of them in lockstep through ONE event
loop, amortizing the per-cycle skeleton, heap traffic and wake
dispatch across seeds while keeping every lane's counters bit-identical
to a serial single-seed event run (pinned by the cross-kernel fuzz
harness, ``tests/sim/test_kernel_fuzz.py``).

Three structural changes make the shared loop pay:

**Struct-of-arrays hot state.**  The event kernel's per-object hot
attributes (router occupancy, exact active-set membership, per-input
streaming flags, SA candidate heads, pending reservations, cached next
wakes) become flat parallel columns indexed by ``ln = lane * num_nodes
+ node`` (or ``lane * num_buffers + buffer``): plain lists and
bytearrays the loop indexes with integers instead of chasing attribute
chains through router objects.  Static structure is flattened the same
way (``buf_flat``/``octx_flat`` tables indexed by ``node * PMAX +
port``; hand-off VCs as packed ints ``(node * PMAX + port) * VCS +
vc``).  Per-flit state disappears entirely: a packet moving between
two stops is one *span record* — a plain list indexed by the ``_R*``
constants — carrying its send window ``[start, end]`` and a settlement
cursor, replacing ``size_flits`` Flit objects, two deque operations
per flit and the per-flit chain replay loops.

**Calendar-queue-lite scheduling.**  Event horizons in the kernel are
short (a span ends at most ``flits_per_packet + extra`` cycles after
its grant; credits return after ``1 + credit_latency`` cycles), so the
shared event queue is a ring of per-cycle buckets — one append to
schedule, no heap compares — with a small overflow heap for the rare
far-future event (pre-drawn injection gaps).  Within a cycle, buckets
are split by kernel phase and processed in the serial kernel's phase
order (generate, finish, ST, NIC, NIC-finish, SA); within a phase,
components never observe each other (each stream owns its VCs,
segment and credit queue — see the ORD001 notes in ``network.py``),
so bucket order is unobservable.

**Per-router next-wake cache.**  The serial kernel pushes every SA
wake (head eligibility, credit usability, output release) onto one
heap and deduplicates at pop via ``sa_cycle``; saturated routers
accumulate ~4 wakes per segment.  Here each (lane, router) caches ONE
pending wake cycle (``sa_next``) and the ring holds at most one live
entry per distinct cached value.  A wake insert re-pushes only when
the cached next wake changes (a strictly earlier cycle arrives, or the
cache is empty); later wakes are *dropped* and re-derived when the
cached scan runs: a scan that cannot grant re-arms itself from state
(the earliest head eligibility still in the future, or the free-VC
queue's next pending credit), and blockers with no derivable cycle
(output reserved, input still streaming) are woken by the teardown
that clears them.  Credit wakes are gated on the router having any
candidate head at all, so idle routers are never scanned.  The cache
invariant (checked by ``sanitizer.check_batch`` in sanitize mode):
whenever a grant is possible, the cached wake is never later than the
earliest cycle at which the serial kernel would grant — so no counting
scan is ever missed.  Skipped scans are provable no-ops: a scan
touches counters or arbiter state only when it grants (an arbiter with
a non-empty request set always grants), and the grant cycles are
reproduced exactly.

Equivalence argument (why lockstep replay is exact):

* Same-cycle events of different lanes are fully independent; within a
  lane the phase split reproduces the serial kernel's intra-cycle
  order, and within a phase the serial kernel's own iteration order is
  already unobservable (disjoint VCs, free-VC queues and arbiters; one
  segment per start *and* per end, so credit queues are disjoint per
  (node, input)).
* Span settlement mirrors the chain calculus of ``network.py``
  exactly: the same batched counter formulas over the same windows,
  settled at the same sites (finish events and counter-snapshot
  syncs), with the same feeder-first ordering (a consumer span settles
  the span writing its hand-off VC first, recursively).  Floating-
  point sums stay bit-exact because per-hop millimetres are integral
  (the CNT001 contract).
* Clock accounting integrates the exact active set between membership
  transitions (end-of-cycle sampling: a transition while processing
  cycle *t* accrues the old membership over ``[last, t)``), which is
  exact because membership only changes at events.
* The serial kernel retries NIC injection every cycle; the engine is
  event-driven (retry at the peeked next-usable credit, or wake on a
  release), which is unobservable because a failed serial retry has no
  side effects and free-VC promotion order is timing-invariant (the
  ready deque is always (usable, seq)-sorted — a credit released
  after a promotion is usable strictly later than everything already
  promoted).
* RNG streams are untouched: the engine calls each lane's own traffic
  model with the same per-flow call sequence as the serial kernel.

:class:`LockstepNetworks` is the generic fallback driver: it advances
any mix of network objects implementing the shared ``step()/_sync()``
protocol (``DedicatedNetwork``, non-event kernels) cycle-by-cycle with
the serial per-lane run protocol.  It amortizes nothing inside a
cycle but presents the same batched API, so sweeps and the fuzz
harness drive every design through one entry point,
:func:`run_batched`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from .network import Network
from .packet import Packet, _packet_ids
from .stats import SimResult, hist_bucket
from .traffic import BernoulliTraffic
from . import sanitizer

__all__ = [
    "BatchedEventNetworks",
    "LockstepNetworks",
    "run_batched",
    "batch_run_cycles",
]

# Kernel phases within a cycle, in the serial kernel's order.
_P_GEN, _P_FIN, _P_ST, _P_NIC, _P_NFIN, _P_SA = range(6)
_NUM_PHASES = 6

#: Ring size (power of two).  Events further out than this land on the
#: overflow heap; only pre-drawn injection gaps ever do — adoption
#: verifies every other horizon (span length, segment extra cycles,
#: credit latency) fits the ring.
_RING = 512
_MASK = _RING - 1

# Span kinds.
_K_FINAL = 0    # router -> destination NIC (serial _ResChain)
_K_MID = 1      # router -> buffered stop   (serial _MidChain)
_K_NIC_BYP = 2  # NIC -> destination NIC    (serial _NicChain)
_K_NIC_MID = 3  # NIC -> buffered stop      (serial _NicMidChain)

# Span records are plain lists (one packet span: a stream's contiguous
# send window, replacing the serial kernel's per-flit deques and chain
# objects), indexed by these slots.  START/END are the first and last
# send cycles (fixed at grant/injection — granted streams never stall
# organically, see the no-stall induction in ``network.py``); NEXT is
# the first send whose counter/occupancy effects have not yet been
# applied.  FDR links to the span currently writing this span's source
# VC, so settlement replays hand-off writes before the reads that
# consume them — the same feeder-first ordering as chain settlement.
# FKEY/WKEY are packed hand-off VC ids ((node * PMAX + port) * VCS +
# vc) for the writer registry; SIDX is the span's slot in its lane's
# stream list (swap-remove).
(
    _R_KIND, _R_LANE, _R_LN, _R_BUF, _R_VC, _R_OUT, _R_PKT, _R_ASG,
    _R_START, _R_END, _R_NEXT, _R_FDR, _R_FKEY, _R_XB, _R_MM, _R_EXTRA,
    _R_TLN, _R_EPORT, _R_SINK, _R_CEND, _R_WKEY, _R_SIDX, _R_TBUF,
) = range(23)

# Deferred per-lane counter column slots (see ``self.cnt``): the hot
# loop accumulates into these indexed lists and _flush_counters folds
# them into the lane's EventCounters at sync boundaries.
(
    _C_XB, _C_MM, _C_PL, _C_BR, _C_BW, _C_CE, _C_CX, _C_CM,
    _C_SR, _C_SG,
) = range(10)
_C_N = 10

# Candidate-head entries (the values of ``head_slots``) are small
# lists built at insert time with everything a switch-allocation scan
# needs, so scans run on plain subscripts instead of re-deriving
# lookups:
#   [0] key        (in_port, vc) tuple — the arbiter client id
#   [1] elig       first cycle the head may request SA
#   [2] out        wanted output port int at this router
#   [3] packet
#   [4] buf        flat buffer index of the head's input here
#   [5] fq         this router's free-VC queue for ``out`` (or None)
#   [6] arb        this router's arbiter for ``out`` (or None)
#   [7] octx       this router's output context for ``out`` (or None)
#   [8] fkey       packed writer key of the span that wrote this head
# A granted entry has [0] set to None (swept after the scan).


def _identity_key(net: Network) -> tuple:
    """Structural fingerprint adopted lanes must share."""
    return (
        net.mesh.width,
        net.mesh.height,
        net.cfg.flits_per_packet,
        net.cfg.vcs_per_port,
        net.cfg.vc_depth_flits,
        net.cfg.credit_latency,
        net.cfg.hpc_max,
        tuple((f.flow_id, f.src, f.dst) for f in net.flows),
    )


class BatchedEventNetworks:
    """N event-kernel lanes advancing in lockstep through one loop.

    ``lanes`` must be freshly constructed ``kernel="event"``
    :class:`Network` instances built from the same workload (identical
    flows, routes and presets; only traffic seeds differ).  The engine
    takes ownership: adopted networks must not be stepped directly
    afterwards — their counters, stats and sink totals are maintained
    exactly, but per-flit buffer internals are not materialized.
    """

    def __init__(self, lanes: Sequence[Network]):
        if not lanes:
            raise ValueError("need at least one lane")
        for net in lanes:
            if type(net) is not Network:
                raise TypeError(
                    "BatchedEventNetworks adopts repro.sim.network.Network "
                    "lanes only, got %r" % type(net).__name__
                )
            if net.kernel != "event":
                raise ValueError(
                    "lane kernel must be 'event', got %r" % net.kernel
                )
            if net.cycle != 0:
                raise ValueError("lanes must be freshly built (cycle 0)")
            if net.cfg.flits_per_packet > net.cfg.vc_depth_flits:
                raise ValueError(
                    "flits_per_packet > vc_depth_flits is unsupported in "
                    "batched mode (virtual cut-through would overflow)"
                )
        key = _identity_key(lanes[0])
        for net in lanes[1:]:
            if _identity_key(net) != key:
                raise ValueError(
                    "all lanes must share one built workload "
                    "(identical mesh/config/flows); only seeds may differ"
                )
        self.lanes: List[Network] = list(lanes)
        self.sanitize = any(net.sanitize for net in lanes)
        self.cycle = 0
        self._build_static()
        self._build_lane_state()
        self._seed_events()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build_static(self) -> None:
        """Shared static tables (identical across lanes by validation)."""
        from .segments import BufferEnd, NicStart

        net0 = self.lanes[0]
        mesh = net0.mesh
        self.num_nodes = nn = mesh.num_nodes
        self.num_lanes = len(self.lanes)
        self.flits_per_packet = net0.cfg.flits_per_packet
        self.credit_latency = net0.cfg.credit_latency

        #: Ports-per-router column for clock accounting.
        self.n_ports: List[int] = [
            len(net0.routers[node].buffers) for node in range(nn)
        ]
        # Flat buffer ids: buf_flat[node * PMAX + port] -> buf index.
        self.pmax = 1 + max(
            (
                int(port)
                for node in range(nn)
                for port in net0.routers[node].buffers
            ),
            default=0,
        )
        self.vcs = net0.cfg.vcs_per_port
        pmax = self.pmax
        vcs = self.vcs
        self.buf_flat: List[int] = [-1] * (nn * pmax)
        num_bufs = 0
        for node in range(nn):
            for port in net0.routers[node].buffers:
                self.buf_flat[node * pmax + int(port)] = num_bufs
                num_bufs += 1
        self.num_bufs = num_bufs

        # Wanted-output lookup shared across lanes, as plain ints:
        # flow_wanted[flow_id][node] -> out port int (-1 off-route).
        self.flow_route = net0._flow_route
        self.flow_wanted: Dict[int, List[int]] = {}
        for fid, by_node in net0._flow_out.items():
            row = [-1] * nn
            for node, out in by_node.items():
                row[node] = int(out)
            self.flow_wanted[fid] = row

        # Per-node SA output scan order (serial: config.dynamic_outputs
        # restricted to ports with segments) and a flat per-output
        # context table: (out_port, t_node|-1, end_port|-1, crossed,
        # hop_mm, extra, end_node, wkey_base, target_buf|-1).
        self.node_outs: List[List[Tuple]] = []
        self.octx_flat: List[Optional[Tuple]] = [None] * (nn * pmax)
        max_extra = 0
        for node in range(nn):
            router = net0.routers[node]
            outs: List[Tuple] = []
            for out_port in router.config.dynamic_outputs:
                seg = router.out_segment.get(out_port)
                if seg is None:
                    continue
                end = seg.end
                if isinstance(end, BufferEnd):
                    t_node = end.node
                    end_port = int(end.port)
                    wk0 = (t_node * pmax + end_port) * vcs
                    t_buf = self.buf_flat[t_node * pmax + end_port]
                else:
                    t_node = -1
                    end_port = -1
                    wk0 = -1
                    t_buf = -1
                entry = (
                    int(out_port),
                    t_node,
                    end_port,
                    len(seg.routers_crossed),
                    seg.hops * net0._mm_per_hop,
                    seg.extra_cycles,
                    end.node,
                    wk0,
                    t_buf,
                )
                if seg.extra_cycles > max_extra:
                    max_extra = seg.extra_cycles
                outs.append(entry)
                self.octx_flat[node * pmax + int(out_port)] = entry
            self.node_outs.append(outs)

        # Static NIC injection context per source node, same shape
        # minus the out port: (t_node|-1, end_port|-1, crossed, hop_mm,
        # extra, end_node, wkey_base, target_buf|-1).
        self.nic_ctx: Dict[int, Tuple] = {}
        for node in net0.nic_sources:
            seg = net0.segments.from_start(NicStart(node))
            end = seg.end
            if isinstance(end, BufferEnd):
                t_node = end.node
                end_port = int(end.port)
                wk0 = (t_node * pmax + end_port) * vcs
                t_buf = self.buf_flat[t_node * pmax + end_port]
            else:
                t_node = -1
                end_port = -1
                wk0 = -1
                t_buf = -1
            self.nic_ctx[node] = (
                t_node,
                end_port,
                len(seg.routers_crossed),
                seg.hops * net0._mm_per_hop,
                seg.extra_cycles,
                end.node,
                wk0,
                t_buf,
            )
            if seg.extra_cycles > max_extra:
                max_extra = seg.extra_cycles

        # Every non-injection event horizon must fit the ring, so the
        # hot loop can append without an overflow guard.
        if (
            self.flits_per_packet + max_extra + self.credit_latency + 4
            >= _RING
        ):
            raise ValueError(
                "event horizon exceeds the scheduling ring "
                "(flits_per_packet + segment extras too large)"
            )

        # Lane/node decode tables for ln = lane * nn + node.
        L = self.num_lanes
        self.ln_lane: List[int] = [
            lane for lane in range(L) for _ in range(nn)
        ]
        self.ln_node: List[int] = list(range(nn)) * L

    def _build_lane_state(self) -> None:
        """Per-lane dynamic columns and object tables."""
        from .segments import BufferEnd, OutputStart

        nn = self.num_nodes
        L = self.num_lanes
        lanes = self.lanes
        size = L * nn

        # SoA columns, indexed ln = lane * nn + node.
        self.occ: List[int] = [0] * size
        self.active = bytearray(size)
        self.head_slots: List[List[list]] = [[] for _ in range(size)]
        self.reservations: List[Dict] = [dict() for _ in range(size)]
        #: Cached next SA wake per (lane, router); -1 = none pending.
        self.sa_next: List[int] = [-1] * size
        self.streaming = bytearray(L * self.num_bufs)

        # Clock integral accumulators (end-of-cycle sampling).
        self.active_cnt = [0] * L
        self.ports_cnt = [0] * L
        self.clock_router_acc = [0] * L
        self.clock_port_acc = [0] * L
        self.clock_last = [0] * L
        self.counters_flushed = [0] * L

        #: Per-lane deferred counter columns (slots _C_XB.._C_SG),
        #: flushed into the lane's EventCounters by _flush_counters.
        #: Indexed-list adds are ~2x cheaper than dataclass attribute
        #: read-modify-writes, and the hot loop does ~10 per event.
        self.cnt: List[List[int]] = [[0] * _C_N for _ in range(L)]

        #: Per-lane pending histogram (bucket -> count) and per-node
        #: delivered-flit (dst -> flits) increments.  The serial kernels
        #: accumulate these inside ``StatsCollector.on_deliver``; the
        #: batched delivery sites append to ``stats._delivered``
        #: directly, so they defer the same increments here and
        #: ``_flush_counters`` folds them into the lane's collector at
        #: every sync (cross-checked by ``sanitizer.check_batch``).
        self.hist_pend: List[Dict[int, int]] = [dict() for _ in range(L)]
        self.node_pend: List[Dict[int, int]] = [dict() for _ in range(L)]

        # NIC columns.
        self.nic_busy = bytearray(size)
        self.nic_next = [-1] * size     # cycle of a scheduled attempt
        self.nic_wait = bytearray(size)  # waiting on a credit release
        #: Non-empty flow queues per source NIC (mirrors
        #: ``nic.queues[fid]`` truthiness, maintained at the only two
        #: mutation points: generate-append and inject-popleft), so an
        #: injection attempt scans live flows instead of every queue.
        #: Arbiter semantics only test membership, so order is free.
        self.nic_live: List[Dict[int, bool]] = [
            dict() for _ in range(size)
        ]

        # In-flight spans per lane (swap-removed via _R_SIDX) and
        # hand-off writer registry (feeder capture, packed int keys).
        self.streams: List[List[list]] = [[] for _ in range(L)]
        self.chain_writers: List[Dict[int, list]] = [
            dict() for _ in range(L)
        ]

        # Per-lane object tables reusing the lane networks' own
        # stateful components, so every arbitration and credit decision
        # runs through bit-identical machinery.
        self.lane_counters = [net.counters for net in lanes]
        self.lane_stats = [net.stats for net in lanes]
        self.lane_traffic = [net.traffic for net in lanes]
        self.lane_flow_by_id = [net.flow_by_id for net in lanes]
        self.lane_nics = [net.nic_sources for net in lanes]
        self.lane_sinks = [net.nic_sinks for net in lanes]

        #: outq[ln][out_port] = (free-VC queue, arbiter): the lane's
        #: own per-output instances, flattened to one lookup.
        self.outq: List[Dict[int, Tuple]] = []
        for net in lanes:
            for node in range(nn):
                router = net.routers[node]
                arbiters = router.arbiters
                self.outq.append(
                    {
                        int(p): (q, arbiters[p])
                        for p, q in router.out_freeq.items()
                    }
                )

        #: cred_up[lane * num_bufs + buf] = (pending_heap, release_seq,
        #: crossed, hop_mm, wake_node|None, nic_node|None): upstream
        #: credit return for a tail read at a buffered input (the
        #: queue's own pending heap and sequence counter, so a release
        #: is one inline heappush), plus the NIC to re-arm when the
        #: segment starts at an injection port (the serial kernel
        #: instead retries NICs every cycle).
        self.cred_up: List[Optional[Tuple]] = [None] * (L * self.num_bufs)
        #: cred_end analogues keyed by the consuming span's segment:
        #: final router spans by out_cred_end[ln][out_port], bypass NIC
        #: spans by source node.
        self.nic_freeq: List[Dict[int, object]] = []
        self.nic_cred_end: List[Dict[int, Tuple]] = []
        self.out_cred_end: List[Dict[int, Tuple]] = [
            dict() for _ in range(size)
        ]

        pmax = self.pmax
        for lane, net in enumerate(lanes):
            nic_freeq_row: Dict[int, object] = {}
            nic_cred_row: Dict[int, Tuple] = {}
            for seg in net.segments.segments():
                start = seg.start
                queue = net.free_vcs[start]
                crossed = len(seg.routers_crossed)
                hop_mm = seg.hops * net._mm_per_hop
                if type(start) is OutputStart:
                    wake: Optional[int] = start.node
                    nic_node: Optional[int] = None
                else:
                    wake = None
                    nic_node = start.node
                    nic_freeq_row[start.node] = queue
                entry = (
                    queue._pending,
                    queue._release_seq,
                    crossed,
                    hop_mm,
                    wake,
                    nic_node,
                )
                end = seg.end
                if type(end) is BufferEnd:
                    buf = self.buf_flat[end.node * pmax + int(end.port)]
                    self.cred_up[lane * self.num_bufs + buf] = entry
                else:
                    # NIC end: the consuming span releases this credit.
                    if type(start) is OutputStart:
                        self.out_cred_end[lane * nn + start.node][
                            int(start.port)
                        ] = entry
                    else:
                        nic_cred_row[start.node] = entry
            self.nic_freeq.append(nic_freeq_row)
            self.nic_cred_end.append(nic_cred_row)

    def _seed_events(self) -> None:
        """Ring of per-cycle, per-phase buckets + overflow heap, seeded
        with each lane's pre-drawn injection events."""
        self.ring: List[List[list]] = [
            [[] for _ in range(_NUM_PHASES)] for _ in range(_RING)
        ]
        self.overflow: List[Tuple[int, int, int, object]] = []
        self._ovf_seq = itertools.count()
        nn = self.num_nodes
        for lane, net in enumerate(self.lanes):
            traffic = net.traffic
            inner = getattr(traffic, "_inner", traffic)
            # Pre-drawn Bernoulli schedules get fat GEN items carrying
            # everything the injection needs (bound RNG, queues, NIC),
            # so the hot loop re-draws the gap inline with the exact
            # trial sequence of ``BernoulliTraffic._draw_gap``.  Other
            # traffic models keep the generic (lane, flow_id) item.
            fast = (
                isinstance(inner, BernoulliTraffic)
                and inner.mode == "predraw"
            )
            for cyc, flow_id in net._inject_heap:
                if fast:
                    flow = net.flow_by_id[flow_id]
                    rate = inner._rates[flow_id]
                    nic = net.nic_sources[flow.src]
                    ln = lane * nn + flow.src
                    item: tuple = (
                        lane, flow_id,
                        inner._rngs[flow_id].random
                        if rate < 1.0 else None,
                        rate, nic, nic.queues[flow_id], net.stats,
                        flow.src, flow.dst, self.flow_route[flow_id],
                        ln, self.nic_live[ln], inner._next,
                    )
                else:
                    item = (lane, flow_id)
                self._schedule(cyc, _P_GEN, item)
        # Lane drain bookkeeping (populated by run()).
        self._stopped = bytearray(self.num_lanes)
        self._lane_end = [0] * self.num_lanes

    # ------------------------------------------------------------------
    # Scheduling helper (cold paths; the hot loop appends inline)
    # ------------------------------------------------------------------

    def _schedule(self, cycle: int, phase: int, item: object) -> None:
        if cycle - self.cycle >= _RING:
            heapq.heappush(
                self.overflow, (cycle, phase, next(self._ovf_seq), item)
            )
        else:
            self.ring[cycle & _MASK][phase].append(item)

    # ------------------------------------------------------------------
    # Clock accounting (exact active set, integrated between events)
    # ------------------------------------------------------------------

    def _settle_clock(self, lane: int, now: int) -> None:
        last = self.clock_last[lane]
        if now > last:
            dt = now - last
            self.clock_router_acc[lane] += self.active_cnt[lane] * dt
            self.clock_port_acc[lane] += self.ports_cnt[lane] * dt
            self.clock_last[lane] = now

    def _activate(self, lane: int, ln: int, now: int) -> None:
        if not self.active[ln]:
            self._settle_clock(lane, now)
            self.active[ln] = 1
            self.active_cnt[lane] += 1
            self.ports_cnt[lane] += self.n_ports[self.ln_node[ln]]

    def _deactivate(self, lane: int, ln: int, now: int) -> None:
        if self.active[ln]:
            self._settle_clock(lane, now)
            self.active[ln] = 0
            self.active_cnt[lane] -= 1
            self.ports_cnt[lane] -= self.n_ports[self.ln_node[ln]]

    # ------------------------------------------------------------------
    # Span settlement (the chain calculus, span-at-a-time)
    # ------------------------------------------------------------------

    def _settle(self, rec: list, through: int) -> None:
        """Apply counter/occupancy effects of sends <= ``through``.

        Mirrors ``_ResChain/_MidChain/_NicChain/_NicMidChain.advance``:
        batched integral counter adds over the settled window, feeder
        settled first so hand-off writes precede the reads consuming
        them.  Tail-cycle specials (delivery, credits, teardown) are
        applied by the finish handlers, which always settle through the
        tail first.
        """
        last = rec[_R_END]
        if through < last:
            last = through
        c0 = rec[_R_NEXT]
        if c0 > last:
            return
        feeder = rec[_R_FDR]
        if feeder is not None:
            self._settle(feeder, through)
        count = last - c0 + 1
        kind = rec[_R_KIND]
        c = self.cnt[rec[_R_LANE]]
        c[_C_XB] += rec[_R_XB] * count
        c[_C_MM] += rec[_R_MM] * count
        c[_C_PL] += count
        if kind <= _K_MID:  # router-sourced: reads from a buffered VC
            c[_C_BR] += count
            self.occ[rec[_R_LN]] -= count
        if kind == _K_MID or kind == _K_NIC_MID:
            c[_C_BW] += count
            self.occ[rec[_R_TLN]] += count
            self._activate(rec[_R_LANE], rec[_R_TLN], self.cycle)
        else:  # delivers at a NIC sink
            rec[_R_SINK].flits_received += count
        rec[_R_NEXT] = last + 1

    def _sync_lane(self, lane: int, through: int) -> None:
        """Settle every in-flight span of a lane (snapshot boundary)."""
        for rec in self.streams[lane]:
            self._settle(rec, through)

    def _flush_counters(self, lane: int, now: int) -> None:
        """Bring a lane's EventCounters up to ``now`` executed cycles."""
        self._settle_clock(lane, now)
        counters = self.lane_counters[lane]
        counters.clock_router_cycles += self.clock_router_acc[lane]
        counters.clock_port_cycles += self.clock_port_acc[lane]
        self.clock_router_acc[lane] = 0
        self.clock_port_acc[lane] = 0
        hist_pend = self.hist_pend[lane]
        if hist_pend:
            stats = self.lane_stats[lane]
            counts = stats.hist.counts
            for bucket, count in hist_pend.items():
                counts[bucket] += count
            hist_pend.clear()
        node_pend = self.node_pend[lane]
        if node_pend:
            node_flits = self.lane_stats[lane].node_flits
            for node, flits in node_pend.items():
                node_flits[node] = node_flits.get(node, 0) + flits
            node_pend.clear()
        c = self.cnt[lane]
        if any(c):
            counters.crossbar_traversals += c[_C_XB]
            counters.link_flit_mm += c[_C_MM]
            counters.pipeline_latches += c[_C_PL]
            counters.buffer_reads += c[_C_BR]
            counters.buffer_writes += c[_C_BW]
            counters.credit_events += c[_C_CE]
            counters.credit_crossbar_traversals += c[_C_CX]
            counters.credit_mm += c[_C_CM]
            counters.sa_requests += c[_C_SR]
            counters.sa_grants += c[_C_SG]
            c[:] = [0] * _C_N
        ran = now - self.counters_flushed[lane]
        if ran:
            counters.cycles += ran
            counters.total_router_cycles += self.num_nodes * ran
            self.counters_flushed[lane] = now

    def _sync_all(self, now: int) -> None:
        for lane in range(self.num_lanes):
            if not self._stopped[lane]:
                self._sync_lane(lane, now - 1)
                self._flush_counters(lane, now)
        if self.sanitize:
            sanitizer.check_batch(self)

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------

    def _run_to(self, limit: int) -> None:
        """Process all cycles in [self.cycle, limit).

        Every handler is inlined: span grants, credit releases and
        next-wake arming are spelled out at each site so the loop runs
        on local bindings and flat-column indexing with no per-event
        method calls (settlement keeps its method — it recurses through
        feeder links).
        """
        # Local bindings for the hot loop.
        ring = self.ring
        overflow = self.overflow
        heappush = heapq.heappush
        heappop = heapq.heappop
        ovf_seq = self._ovf_seq
        nn = self.num_nodes
        num_bufs = self.num_bufs
        pmax = self.pmax
        vcs = self.vcs
        occ = self.occ
        active = self.active
        head_slots = self.head_slots
        reservations = self.reservations
        sa_next = self.sa_next
        streaming = self.streaming
        buf_flat = self.buf_flat
        octx_flat = self.octx_flat
        flow_wanted = self.flow_wanted
        flow_route = self.flow_route
        node_outs = self.node_outs
        nic_ctx = self.nic_ctx
        ln_lane = self.ln_lane
        ln_node = self.ln_node
        n_ports = self.n_ports
        active_cnt = self.active_cnt
        ports_cnt = self.ports_cnt
        clock_racc = self.clock_router_acc
        clock_pacc = self.clock_port_acc
        clock_last = self.clock_last
        cnt = self.cnt
        hist_pend = self.hist_pend
        node_pend = self.node_pend
        new_packet = Packet.__new__
        pid_counter = _packet_ids
        lane_stats = self.lane_stats
        lane_traffic = self.lane_traffic
        lane_flow_by_id = self.lane_flow_by_id
        lane_nics = self.lane_nics
        lane_sinks = self.lane_sinks
        outq = self.outq
        cred_up = self.cred_up
        nic_freeq = self.nic_freeq
        nic_cred_end = self.nic_cred_end
        out_cred_end = self.out_cred_end
        nic_busy = self.nic_busy
        nic_next = self.nic_next
        nic_wait = self.nic_wait
        nic_live = self.nic_live
        streams = self.streams
        chain_writers = self.chain_writers
        settle = self._settle
        flits_pp = self.flits_per_packet
        credit_latency = self.credit_latency
        single_flit = flits_pp == 1
        stopped = self._stopped

        cycle = self.cycle
        while cycle < limit:
            self.cycle = cycle
            while overflow and overflow[0][0] <= cycle:
                ent = heapq.heappop(overflow)
                ring[cycle & _MASK][ent[1]].append(ent[3])
            gen, fin, st, nic_b, nfin, sa_l = ring[cycle & _MASK]

            # -- generate --------------------------------------------
            if gen:
                for item in gen:
                    if len(item) > 2:
                        # Fat pre-drawn Bernoulli item: inject one
                        # packet, re-draw the gap with the identical
                        # trial sequence of ``_draw_gap``.
                        (lane, flow_id, rng_random, rate, nic, queue,
                         stats, src, dst, route, ln, live,
                         tnext) = item
                        # Bare construction (attribute-for-attribute
                        # what the dataclass __init__ produces, ~3x
                        # cheaper; size >= 1 was validated at build).
                        packet = new_packet(Packet)
                        packet.flow_id = flow_id
                        packet.src = src
                        packet.dst = dst
                        packet.size_flits = flits_pp
                        packet.create_cycle = cycle
                        packet.route = route
                        packet.pid = next(pid_counter)
                        packet.inject_cycle = None
                        packet.head_arrive_cycle = None
                        packet.tail_arrive_cycle = None
                        queue.append(packet)
                        stats.created_total += 1
                        if stats.measuring:
                            stats._measured[packet.pid] = packet
                        nic.queued += 1
                        live[flow_id] = True
                        if (
                            not nic_busy[ln]
                            and not nic_wait[ln]
                            and nic_next[ln] < 0
                        ):
                            nic_next[ln] = cycle
                            nic_b.append(ln)
                        if rng_random is None:
                            nxt = cycle + 1
                        else:
                            gap = 1
                            while rng_random() >= rate:
                                gap += 1
                            nxt = cycle + gap
                        tnext[flow_id] = nxt
                        if nxt - cycle < _RING:
                            ring[nxt & _MASK][_P_GEN].append(item)
                        else:
                            heappush(
                                overflow,
                                (nxt, _P_GEN, next(ovf_seq), item),
                            )
                        continue
                    lane, flow_id = item
                    traffic = lane_traffic[lane]
                    flow = lane_flow_by_id[lane][flow_id]
                    count = traffic.packets_at(flow, cycle)
                    if count:
                        src = flow.src
                        nic = lane_nics[lane][src]
                        queue = nic.queues[flow_id]
                        stats = lane_stats[lane]
                        route = flow_route[flow_id]
                        dst = flow.dst
                        for _ in range(count):
                            packet = Packet(
                                flow_id=flow_id,
                                src=src,
                                dst=dst,
                                size_flits=flits_pp,
                                create_cycle=cycle,
                                route=route,
                            )
                            queue.append(packet)
                            stats.on_create(packet)
                        nic.queued += count
                        ln = lane * nn + src
                        nic_live[ln][flow_id] = True
                        if (
                            not nic_busy[ln]
                            and not nic_wait[ln]
                            and nic_next[ln] < 0
                        ):
                            nic_next[ln] = cycle
                            nic_b.append(ln)
                    nxt = traffic.next_injection_cycle(flow, cycle + 1)
                    if nxt is not None:
                        if nxt - cycle < _RING:
                            ring[nxt & _MASK][_P_GEN].append(item)
                        else:
                            heappush(
                                overflow,
                                (nxt, _P_GEN, next(ovf_seq), item),
                            )
                gen.clear()

            # -- finish events (router-sourced spans) ----------------
            if fin:
                for rec in fin:
                    lane = rec[_R_LANE]
                    if stopped[lane]:
                        continue
                    c = cnt[lane]
                    # Inline settlement of the span's remaining window
                    # (never empty: syncs settle through at most
                    # end - 1 before the finish event runs).
                    feeder = rec[_R_FDR]
                    if feeder is not None and feeder[_R_NEXT] <= cycle:
                        # One-level inline of settle(): feeders are
                        # always MID spans (only writers register), so
                        # the kind dispatch reduces to the buffer-read
                        # test.  Deeper feeders recurse via the method.
                        f2 = feeder[_R_FDR]
                        if f2 is not None and f2[_R_NEXT] <= cycle:
                            settle(f2, cycle)
                        f_last = feeder[_R_END]
                        if cycle < f_last:
                            f_last = cycle
                        f_count = f_last - feeder[_R_NEXT] + 1
                        if f_count > 0:
                            feeder[_R_NEXT] = f_last + 1
                            c[_C_XB] += feeder[_R_XB] * f_count
                            c[_C_MM] += feeder[_R_MM] * f_count
                            c[_C_PL] += f_count
                            if feeder[_R_KIND] == _K_MID:
                                c[_C_BR] += f_count
                                occ[feeder[_R_LN]] -= f_count
                            c[_C_BW] += f_count
                            f_tln = feeder[_R_TLN]
                            occ[f_tln] += f_count
                            if not active[f_tln]:
                                last = clock_last[lane]
                                if cycle > last:
                                    dt = cycle - last
                                    clock_racc[lane] += (
                                        active_cnt[lane] * dt
                                    )
                                    clock_pacc[lane] += (
                                        ports_cnt[lane] * dt
                                    )
                                    clock_last[lane] = cycle
                                active[f_tln] = 1
                                active_cnt[lane] += 1
                                ports_cnt[lane] += n_ports[
                                    ln_node[f_tln]
                                ]
                    count = cycle - rec[_R_NEXT] + 1
                    rec[_R_NEXT] = cycle + 1
                    c[_C_XB] += rec[_R_XB] * count
                    c[_C_MM] += rec[_R_MM] * count
                    c[_C_PL] += count
                    c[_C_BR] += count
                    ln = rec[_R_LN]
                    occ[ln] -= count
                    sl = streams[lane]
                    i = rec[_R_SIDX]
                    moved = sl.pop()
                    if moved is not rec:
                        sl[i] = moved
                        moved[_R_SIDX] = i
                    node = ln_node[ln]
                    lnb = ln - node
                    if rec[_R_KIND] == _K_FINAL:
                        rec[_R_SINK].flits_received += count
                        packet = rec[_R_PKT]
                        extra = rec[_R_EXTRA]
                        packet.head_arrive_cycle = rec[_R_START] + extra
                        packet.tail_arrive_cycle = cycle + extra
                        rec[_R_SINK].packets_received += 1
                        stats = lane_stats[lane]
                        stats.delivered_total += 1
                        pm = stats._measured
                        pid = packet.pid
                        if pid in pm:
                            stats._delivered.append(pm.pop(pid))
                            hp = hist_pend[lane]
                            b = hist_bucket(packet.head_latency)
                            hp[b] = hp.get(b, 0) + 1
                            np_ = node_pend[lane]
                            dst = packet.dst
                            np_[dst] = np_.get(dst, 0) + packet.size_flits
                        # Release the destination-side credit.
                        pend_l, seq_c, crossed, hop_mm, wake, nic_node \
                            = rec[_R_CEND]
                        usable = cycle + extra + 1 + credit_latency
                        heappush(
                            pend_l, (usable, next(seq_c), rec[_R_ASG])
                        )
                        c[_C_CE] += 1
                        c[_C_CX] += crossed
                        c[_C_CM] += hop_mm
                        if wake is not None:
                            w_ln = lnb + wake
                            if head_slots[w_ln] and (
                                sa_next[w_ln] < 0
                                or usable < sa_next[w_ln]
                            ):
                                sa_next[w_ln] = usable
                                ring[usable & _MASK][_P_SA].append(w_ln)
                        elif nic_node is not None:
                            n_ln = lnb + nic_node
                            if (
                                not nic_busy[n_ln]
                                and lane_nics[lane][nic_node].queued
                                and (
                                    nic_next[n_ln] < 0
                                    or usable < nic_next[n_ln]
                                )
                            ):
                                nic_wait[n_ln] = 0
                                nic_next[n_ln] = usable
                                ring[usable & _MASK][_P_NIC].append(n_ln)
                    else:
                        c[_C_BW] += count
                        t_ln = rec[_R_TLN]
                        occ[t_ln] += count
                        if not active[t_ln]:
                            last = clock_last[lane]
                            if cycle > last:
                                dt = cycle - last
                                clock_racc[lane] += active_cnt[lane] * dt
                                clock_pacc[lane] += ports_cnt[lane] * dt
                                clock_last[lane] = cycle
                            active[t_ln] = 1
                            active_cnt[lane] += 1
                            ports_cnt[lane] += n_ports[ln_node[t_ln]]
                        cw = chain_writers[lane]
                        wk = rec[_R_WKEY]
                        if cw.get(wk) is rec:
                            del cw[wk]
                    # Teardown, exactly as _ev_finish_res: release the
                    # upstream credit, clear streaming, free the output.
                    buf = rec[_R_BUF]
                    pend_l, seq_c, crossed, hop_mm, wake, nic_node = (
                        cred_up[lane * num_bufs + buf]
                    )
                    usable = cycle + 1 + credit_latency
                    heappush(pend_l, (usable, next(seq_c), rec[_R_VC]))
                    c[_C_CE] += 1
                    c[_C_CX] += crossed
                    c[_C_CM] += hop_mm
                    if wake is not None:
                        w_ln = lnb + wake
                        if head_slots[w_ln] and (
                            sa_next[w_ln] < 0 or usable < sa_next[w_ln]
                        ):
                            sa_next[w_ln] = usable
                            ring[usable & _MASK][_P_SA].append(w_ln)
                    elif nic_node is not None:
                        n_ln = lnb + nic_node
                        if (
                            not nic_busy[n_ln]
                            and lane_nics[lane][nic_node].queued
                            and (
                                nic_next[n_ln] < 0
                                or usable < nic_next[n_ln]
                            )
                        ):
                            nic_wait[n_ln] = 0
                            nic_next[n_ln] = usable
                            ring[usable & _MASK][_P_NIC].append(n_ln)
                    streaming[lane * num_bufs + buf] = 0
                    res_d = reservations[ln]
                    del res_d[rec[_R_OUT]]
                    if head_slots[ln] and sa_next[ln] != cycle:
                        # Only already-waiting heads can use this
                        # release wake; a head written later this cycle
                        # wakes SA itself.
                        sa_next[ln] = cycle
                        sa_l.append(ln)
                    if not res_d and not occ[ln] and active[ln]:
                        last = clock_last[lane]
                        if cycle > last:
                            dt = cycle - last
                            clock_racc[lane] += active_cnt[lane] * dt
                            clock_pacc[lane] += ports_cnt[lane] * dt
                            clock_last[lane] = cycle
                        active[ln] = 0
                        active_cnt[lane] -= 1
                        ports_cnt[lane] -= n_ports[node]
                fin.clear()

            # -- ST: head sends of fresh non-final grants ------------
            if st:
                for rec in st:
                    lane = rec[_R_LANE]
                    if stopped[lane]:
                        continue
                    # The head's per-cycle observables: source read,
                    # target write, SA candidacy, clock membership.
                    c = cnt[lane]
                    c[_C_BR] += 1
                    c[_C_BW] += 1
                    c[_C_XB] += rec[_R_XB]
                    c[_C_MM] += rec[_R_MM]
                    c[_C_PL] += 1
                    occ[rec[_R_LN]] -= 1
                    t_ln = rec[_R_TLN]
                    occ[t_ln] += 1
                    if not active[t_ln]:
                        last = clock_last[lane]
                        if cycle > last:
                            dt = cycle - last
                            clock_racc[lane] += active_cnt[lane] * dt
                            clock_pacc[lane] += ports_cnt[lane] * dt
                            clock_last[lane] = cycle
                        active[t_ln] = 1
                        active_cnt[lane] += 1
                        ports_cnt[lane] += n_ports[ln_node[t_ln]]
                    elig = cycle + rec[_R_EXTRA] + 2
                    packet = rec[_R_PKT]
                    t_node = ln_node[t_ln]
                    out = flow_wanted[packet.flow_id][t_node]
                    octx_t = octx_flat[t_node * pmax + out]
                    if octx_t is not None:
                        fq_t, arb_t = outq[t_ln][out]
                    else:
                        fq_t = arb_t = None
                    head_slots[t_ln].append([
                        (rec[_R_EPORT], rec[_R_ASG]), elig, out, packet,
                        rec[_R_TBUF], fq_t, arb_t, octx_t, rec[_R_WKEY],
                    ])
                    if sa_next[t_ln] < 0 or elig < sa_next[t_ln]:
                        sa_next[t_ln] = elig
                        ring[elig & _MASK][_P_SA].append(t_ln)
                    if single_flit:
                        # Single-flit packet: the head is the tail.
                        # The serial kernel handles this wholly in the
                        # live ST scan — no chain, no writer entry.
                        sl = streams[lane]
                        i = rec[_R_SIDX]
                        moved = sl.pop()
                        if moved is not rec:
                            sl[i] = moved
                            moved[_R_SIDX] = i
                        ln = rec[_R_LN]
                        node = ln_node[ln]
                        lnb = ln - node
                        buf = rec[_R_BUF]
                        pend_l, seq_c, crossed, hop_mm, wake, nic_node \
                            = cred_up[lane * num_bufs + buf]
                        usable = cycle + 1 + credit_latency
                        heappush(
                            pend_l, (usable, next(seq_c), rec[_R_VC])
                        )
                        c[_C_CE] += 1
                        c[_C_CX] += crossed
                        c[_C_CM] += hop_mm
                        if wake is not None:
                            w_ln = lnb + wake
                            if head_slots[w_ln] and (
                                sa_next[w_ln] < 0
                                or usable < sa_next[w_ln]
                            ):
                                sa_next[w_ln] = usable
                                ring[usable & _MASK][_P_SA].append(w_ln)
                        elif nic_node is not None:
                            n_ln = lnb + nic_node
                            if (
                                not nic_busy[n_ln]
                                and lane_nics[lane][nic_node].queued
                                and (
                                    nic_next[n_ln] < 0
                                    or usable < nic_next[n_ln]
                                )
                            ):
                                nic_wait[n_ln] = 0
                                nic_next[n_ln] = usable
                                ring[usable & _MASK][_P_NIC].append(n_ln)
                        streaming[lane * num_bufs + buf] = 0
                        res_d = reservations[ln]
                        del res_d[rec[_R_OUT]]
                        if head_slots[ln] and sa_next[ln] != cycle:
                            sa_next[ln] = cycle
                            sa_l.append(ln)
                        if not res_d and not occ[ln] and active[ln]:
                            last = clock_last[lane]
                            if cycle > last:
                                dt = cycle - last
                                clock_racc[lane] += active_cnt[lane] * dt
                                clock_pacc[lane] += ports_cnt[lane] * dt
                                clock_last[lane] = cycle
                            active[ln] = 0
                            active_cnt[lane] -= 1
                            ports_cnt[lane] -= n_ports[node]
                        continue
                    rec[_R_NEXT] = cycle + 1
                    # Feeder capture + hand-off writer registration at
                    # the head send, like _MidChain.__init__.
                    cw = chain_writers[lane]
                    rec[_R_FDR] = cw.get(rec[_R_FKEY])
                    cw[rec[_R_WKEY]] = rec
                st.clear()

            # -- NIC injection ---------------------------------------
            if nic_b:
                for ln in nic_b:
                    if nic_next[ln] != cycle:
                        continue  # superseded attempt
                    nic_next[ln] = -1
                    if nic_busy[ln]:
                        continue
                    lane = ln_lane[ln]
                    if stopped[lane]:
                        continue
                    node = ln_node[ln]
                    nic = lane_nics[lane][node]
                    if nic.queued == 0:
                        continue
                    fq = nic_freeq[lane][node]
                    ready = fq._ready
                    if not ready:
                        pend = fq._pending
                        while pend and pend[0][0] <= cycle:
                            ready.append(heappop(pend)[2])
                        if not ready:
                            if pend:
                                nxt = pend[0][0]
                                nic_next[ln] = nxt
                                ring[nxt & _MASK][_P_NIC].append(ln)
                            else:
                                nic_wait[ln] = 1
                            continue
                    live = nic_live[ln]
                    if len(live) == 1:
                        winner = next(iter(live))
                        rr = nic.rr
                        rr._last = rr._index[winner]
                    else:
                        winner = nic.rr.grant(list(live))
                        if winner is None:
                            nic_next[ln] = cycle + 1
                            ring[(cycle + 1) & _MASK][_P_NIC].append(ln)
                            continue
                    wq = nic.queues[winner]
                    packet = wq.popleft()
                    if not wq:
                        del live[winner]
                    nic.queued -= 1
                    vc_id = ready.popleft()
                    packet.inject_cycle = cycle
                    t_node, end_port, crossed, hop_mm, extra, end_node, \
                        wk0, t_buf = nic_ctx[node]
                    if t_node < 0:
                        # Fully bypassed source-to-destination span.
                        rec = [
                            _K_NIC_BYP, lane, ln, -1, -1, -1, packet,
                            vc_id, cycle, cycle + flits_pp - 1, cycle,
                            None, -1, crossed, hop_mm, extra, -1, -1,
                            lane_sinks[lane][end_node],
                            nic_cred_end[lane][node], -1, 0, -1,
                        ]
                        nic_busy[ln] = 1
                        sl = streams[lane]
                        rec[_R_SIDX] = len(sl)
                        sl.append(rec)
                        ring[
                            (cycle + flits_pp - 1) & _MASK
                        ][_P_NFIN].append(rec)
                        continue
                    # Head delivered now; rest defers as a span.
                    c = cnt[lane]
                    c[_C_XB] += crossed
                    c[_C_MM] += hop_mm
                    c[_C_PL] += 1
                    c[_C_BW] += 1
                    t_ln = ln - node + t_node
                    occ[t_ln] += 1
                    if not active[t_ln]:
                        last = clock_last[lane]
                        if cycle > last:
                            dt = cycle - last
                            clock_racc[lane] += active_cnt[lane] * dt
                            clock_pacc[lane] += ports_cnt[lane] * dt
                            clock_last[lane] = cycle
                        active[t_ln] = 1
                        active_cnt[lane] += 1
                        ports_cnt[lane] += n_ports[t_node]
                    elig = cycle + extra + 2
                    out = flow_wanted[packet.flow_id][t_node]
                    octx_t = octx_flat[t_node * pmax + out]
                    if octx_t is not None:
                        fq_t, arb_t = outq[t_ln][out]
                    else:
                        fq_t = arb_t = None
                    head_slots[t_ln].append([
                        (end_port, vc_id), elig, out, packet, t_buf,
                        fq_t, arb_t, octx_t, wk0 + vc_id,
                    ])
                    if sa_next[t_ln] < 0 or elig < sa_next[t_ln]:
                        sa_next[t_ln] = elig
                        ring[elig & _MASK][_P_SA].append(t_ln)
                    if single_flit:
                        # Single-flit packet: nothing left to stream.
                        if nic.queued:
                            nic_next[ln] = cycle + 1
                            ring[(cycle + 1) & _MASK][_P_NIC].append(ln)
                        continue
                    wkey = wk0 + vc_id
                    rec = [
                        _K_NIC_MID, lane, ln, -1, vc_id, -1, packet,
                        vc_id, cycle + 1, cycle + flits_pp - 1,
                        cycle + 1, None, -1, crossed, hop_mm, extra,
                        t_ln, end_port, None, None, wkey, 0, -1,
                    ]
                    chain_writers[lane][wkey] = rec
                    nic_busy[ln] = 1
                    sl = streams[lane]
                    rec[_R_SIDX] = len(sl)
                    sl.append(rec)
                    ring[
                        (cycle + flits_pp - 1) & _MASK
                    ][_P_NFIN].append(rec)
                nic_b.clear()

            # -- NIC finish events -----------------------------------
            if nfin:
                for rec in nfin:
                    lane = rec[_R_LANE]
                    if stopped[lane]:
                        continue
                    c = cnt[lane]
                    count = cycle - rec[_R_NEXT] + 1
                    rec[_R_NEXT] = cycle + 1
                    c[_C_XB] += rec[_R_XB] * count
                    c[_C_MM] += rec[_R_MM] * count
                    c[_C_PL] += count
                    sl = streams[lane]
                    i = rec[_R_SIDX]
                    moved = sl.pop()
                    if moved is not rec:
                        sl[i] = moved
                        moved[_R_SIDX] = i
                    ln = rec[_R_LN]
                    if rec[_R_KIND] == _K_NIC_BYP:
                        rec[_R_SINK].flits_received += count
                        packet = rec[_R_PKT]
                        extra = rec[_R_EXTRA]
                        packet.head_arrive_cycle = rec[_R_START] + extra
                        packet.tail_arrive_cycle = cycle + extra
                        rec[_R_SINK].packets_received += 1
                        stats = lane_stats[lane]
                        stats.delivered_total += 1
                        pm = stats._measured
                        pid = packet.pid
                        if pid in pm:
                            stats._delivered.append(pm.pop(pid))
                            hp = hist_pend[lane]
                            b = hist_bucket(packet.head_latency)
                            hp[b] = hp.get(b, 0) + 1
                            np_ = node_pend[lane]
                            dst = packet.dst
                            np_[dst] = np_.get(dst, 0) + packet.size_flits
                        pend_l, seq_c, crossed, hop_mm, wake, nic_node \
                            = rec[_R_CEND]
                        usable = cycle + extra + 1 + credit_latency
                        heappush(
                            pend_l, (usable, next(seq_c), rec[_R_ASG])
                        )
                        c[_C_CE] += 1
                        c[_C_CX] += crossed
                        c[_C_CM] += hop_mm
                        if wake is not None:
                            w_ln = ln - ln_node[ln] + wake
                            if head_slots[w_ln] and (
                                sa_next[w_ln] < 0
                                or usable < sa_next[w_ln]
                            ):
                                sa_next[w_ln] = usable
                                ring[usable & _MASK][_P_SA].append(w_ln)
                        elif nic_node is not None:
                            n_ln = ln - ln_node[ln] + nic_node
                            if (
                                not nic_busy[n_ln]
                                and lane_nics[lane][nic_node].queued
                                and (
                                    nic_next[n_ln] < 0
                                    or usable < nic_next[n_ln]
                                )
                            ):
                                nic_wait[n_ln] = 0
                                nic_next[n_ln] = usable
                                ring[usable & _MASK][_P_NIC].append(n_ln)
                    else:
                        c[_C_BW] += count
                        t_ln = rec[_R_TLN]
                        occ[t_ln] += count
                        if not active[t_ln]:
                            last = clock_last[lane]
                            if cycle > last:
                                dt = cycle - last
                                clock_racc[lane] += active_cnt[lane] * dt
                                clock_pacc[lane] += ports_cnt[lane] * dt
                                clock_last[lane] = cycle
                            active[t_ln] = 1
                            active_cnt[lane] += 1
                            ports_cnt[lane] += n_ports[ln_node[t_ln]]
                        cw = chain_writers[lane]
                        wk = rec[_R_WKEY]
                        if cw.get(wk) is rec:
                            del cw[wk]
                    nic_busy[ln] = 0
                    if lane_nics[lane][ln_node[ln]].queued:
                        nic_next[ln] = cycle + 1
                        ring[(cycle + 1) & _MASK][_P_NIC].append(ln)
                nfin.clear()

            # -- SA: woken routers scan their candidate heads --------
            if sa_l:
                for ln in sa_l:
                    if sa_next[ln] != cycle:
                        continue  # stale cache entry
                    sa_next[ln] = -1
                    lane = ln_lane[ln]
                    if stopped[lane]:
                        continue
                    hs = head_slots[ln]
                    if not hs:
                        continue
                    node = ln_node[ln]
                    res_d = reservations[ln]
                    buf_base = lane * num_bufs
                    rearm = -1
                    if len(hs) == 1:
                        ent = hs[0]
                        elig = ent[1]
                        if elig > cycle:
                            rearm = elig
                        elif not streaming[buf_base + ent[4]]:
                            out_port = ent[2]
                            if out_port not in res_d:
                                octx = ent[7]
                                if octx is not None:
                                    fq = ent[5]
                                    ready = fq._ready
                                    if not ready:
                                        pend = fq._pending
                                        while pend and pend[0][0] <= cycle:
                                            ready.append(
                                                heappop(pend)[2]
                                            )
                                    if ready:
                                        c = cnt[lane]
                                        c[_C_SR] += 1
                                        arb = ent[6]
                                        arb._last = arb._index[ent[0]]
                                        c[_C_SG] += 1
                                        del hs[0]
                                        # -- grant (single) ----------
                                        (
                                            out_port, t_node, end_port,
                                            crossed, hop_mm, extra,
                                            end_node, wk0, t_buf,
                                        ) = octx
                                        assigned = ready.popleft()
                                        buf = ent[4]
                                        streaming[buf_base + buf] = 1
                                        fkey = ent[8]
                                        if t_node < 0:
                                            rec = [
                                                _K_FINAL, lane, ln, buf,
                                                ent[0][1], out_port,
                                                ent[3], assigned,
                                                cycle + 1,
                                                cycle + flits_pp,
                                                cycle + 1,
                                                chain_writers[lane].get(
                                                    fkey
                                                ),
                                                fkey, crossed, hop_mm,
                                                extra, -1, -1,
                                                lane_sinks[lane][
                                                    end_node
                                                ],
                                                out_cred_end[ln][
                                                    out_port
                                                ],
                                                -1, 0, -1,
                                            ]
                                            ring[
                                                (cycle + flits_pp)
                                                & _MASK
                                            ][_P_FIN].append(rec)
                                        else:
                                            rec = [
                                                _K_MID, lane, ln, buf,
                                                ent[0][1], out_port,
                                                ent[3], assigned,
                                                cycle + 1,
                                                cycle + flits_pp,
                                                cycle + 1, None, fkey,
                                                crossed, hop_mm, extra,
                                                ln - node + t_node,
                                                end_port, None, None,
                                                wk0 + assigned, 0,
                                                t_buf,
                                            ]
                                            ring[
                                                (cycle + 1) & _MASK
                                            ][_P_ST].append(rec)
                                            if not single_flit:
                                                ring[
                                                    (cycle + flits_pp)
                                                    & _MASK
                                                ][_P_FIN].append(rec)
                                        res_d[out_port] = rec
                                        sl = streams[lane]
                                        rec[_R_SIDX] = len(sl)
                                        sl.append(rec)
                                    else:
                                        pend = fq._pending
                                        if pend:
                                            rearm = pend[0][0]
                        # Streaming input or reserved output: the
                        # teardown clearing it wakes this router.
                    else:
                        by_out: Dict[int, List] = {}
                        for ent in hs:
                            elig = ent[1]
                            if elig > cycle:
                                if rearm < 0 or elig < rearm:
                                    rearm = elig
                                continue
                            if streaming[buf_base + ent[4]]:
                                continue
                            out = ent[2]
                            lst = by_out.get(out)
                            if lst is None:
                                by_out[out] = [ent]
                            else:
                                lst.append(ent)
                        if by_out:
                            c = cnt[lane]
                            sl = streams[lane]
                            granted = False
                            for octx in node_outs[node]:
                                out_port = octx[0]
                                candidates = by_out.get(out_port)
                                if not candidates or out_port in res_d:
                                    continue
                                fq = candidates[0][5]
                                ready = fq._ready
                                if not ready:
                                    pend = fq._pending
                                    while pend and pend[0][0] <= cycle:
                                        ready.append(heappop(pend)[2])
                                    if not ready:
                                        if pend and (
                                            rearm < 0
                                            or pend[0][0] < rearm
                                        ):
                                            rearm = pend[0][0]
                                        continue
                                # Re-filter: an earlier grant this scan
                                # may have marked a shared input
                                # streaming (two VCs of one buffer
                                # wanting different outputs).
                                requests = [
                                    e for e in candidates
                                    if not streaming[buf_base + e[4]]
                                ]
                                if not requests:
                                    continue
                                c[_C_SR] += len(requests)
                                if len(requests) == 1:
                                    ent = requests[0]
                                    arb = ent[6]
                                    arb._last = arb._index[ent[0]]
                                else:
                                    winner = candidates[0][6].grant(
                                        [e[0] for e in requests]
                                    )
                                    if winner is None:
                                        continue
                                    for ent in requests:
                                        if ent[0] == winner:
                                            break
                                c[_C_SG] += 1
                                granted = True
                                key = ent[0]
                                ent[0] = None
                                # -- grant (multi) -------------------
                                (
                                    out_port, t_node, end_port, crossed,
                                    hop_mm, extra, end_node, wk0, t_buf,
                                ) = octx
                                assigned = ready.popleft()
                                buf = ent[4]
                                streaming[buf_base + buf] = 1
                                fkey = ent[8]
                                if t_node < 0:
                                    rec = [
                                        _K_FINAL, lane, ln, buf, key[1],
                                        out_port, ent[3], assigned,
                                        cycle + 1, cycle + flits_pp,
                                        cycle + 1,
                                        chain_writers[lane].get(fkey),
                                        fkey, crossed, hop_mm, extra,
                                        -1, -1,
                                        lane_sinks[lane][end_node],
                                        out_cred_end[ln][out_port],
                                        -1, 0, -1,
                                    ]
                                    ring[
                                        (cycle + flits_pp) & _MASK
                                    ][_P_FIN].append(rec)
                                else:
                                    rec = [
                                        _K_MID, lane, ln, buf, key[1],
                                        out_port, ent[3], assigned,
                                        cycle + 1, cycle + flits_pp,
                                        cycle + 1, None, fkey, crossed,
                                        hop_mm, extra,
                                        ln - node + t_node, end_port,
                                        None, None, wk0 + assigned, 0,
                                        t_buf,
                                    ]
                                    ring[
                                        (cycle + 1) & _MASK
                                    ][_P_ST].append(rec)
                                    if not single_flit:
                                        ring[
                                            (cycle + flits_pp) & _MASK
                                        ][_P_FIN].append(rec)
                                res_d[out_port] = rec
                                rec[_R_SIDX] = len(sl)
                                sl.append(rec)
                            if granted:
                                hs[:] = [
                                    e for e in hs if e[0] is not None
                                ]
                    if rearm >= 0 and (
                        sa_next[ln] < 0 or rearm < sa_next[ln]
                    ):
                        sa_next[ln] = rearm
                        ring[rearm & _MASK][_P_SA].append(ln)
                sa_l.clear()

            cycle += 1
        self.cycle = limit

    # ------------------------------------------------------------------
    # Run protocols (mirroring Network.run / run_cycles)
    # ------------------------------------------------------------------

    def run_cycles(self, cycles: int) -> None:
        """Advance all lanes a fixed number of cycles, then settle."""
        self._run_to(self.cycle + cycles)
        self._sync_all(self.cycle)

    def run(
        self,
        warmup_cycles: int = 1000,
        measure_cycles: int = 20000,
        drain_limit: int = 100000,
    ) -> List[SimResult]:
        """Warm up, measure, then drain each lane — the exact protocol
        of :meth:`Network.run`, per lane, returning per-lane results in
        lane order."""
        self._run_to(warmup_cycles)
        self._sync_all(warmup_cycles)
        baselines = [c.snapshot() for c in self.lane_counters]
        for stats in self.lane_stats:
            stats.measuring = True
        boundary = warmup_cycles + measure_cycles
        self._run_to(boundary)
        self._sync_all(boundary)
        for stats in self.lane_stats:
            stats.measuring = False
        windows = [
            c.delta(b) for c, b in zip(self.lane_counters, baselines)
        ]
        drained = [True] * self.num_lanes
        active = []
        for lane in range(self.num_lanes):
            if self.lane_stats[lane].outstanding_measured > 0:
                active.append(lane)
            else:
                self._finish_lane(lane, boundary)
        drain_counts = [0] * self.num_lanes
        cycle = boundary
        while active:
            self._run_to(cycle + 1)
            cycle += 1
            still = []
            for lane in active:
                drain_counts[lane] += 1
                if self.lane_stats[lane].outstanding_measured == 0:
                    self._finish_lane(lane, cycle)
                elif drain_counts[lane] >= drain_limit:
                    drained[lane] = False
                    self._finish_lane(lane, cycle)
                else:
                    still.append(lane)
            active = still
        results = []
        for lane in range(self.num_lanes):
            stats = self.lane_stats[lane]
            results.append(
                SimResult(
                    summary=stats.summary(),
                    per_flow=stats.per_flow_summary(),
                    counters=windows[lane],
                    measured_cycles=measure_cycles,
                    total_cycles=self._lane_end[lane],
                    drained=drained[lane],
                    undelivered_measured=stats.outstanding_measured,
                    per_tenant=stats.per_tenant_summary(),
                    node_delivered_flits=dict(stats.node_flits),
                )
            )
        if self.sanitize:
            sanitizer.check_batch(self)
        return results

    def _finish_lane(self, lane: int, end_cycle: int) -> None:
        """Final settlement for a lane leaving the drain loop."""
        self._sync_lane(lane, end_cycle - 1)
        self._flush_counters(lane, end_cycle)
        self._lane_end[lane] = end_cycle
        self.lanes[lane].cycle = end_cycle
        self._stopped[lane] = 1
        self._purge_lane_events(lane)

    def _purge_lane_events(self, lane: int) -> None:
        """Drop a stopped lane's scheduled events so the hot loop needs
        no per-event liveness check for running lanes."""
        nn = self.num_nodes
        lo, hi = lane * nn, (lane + 1) * nn
        for bucket in self.ring:
            for phase in (_P_FIN, _P_ST, _P_NFIN):
                lst = bucket[phase]
                if lst:
                    lst[:] = [r for r in lst if r[_R_LANE] != lane]
            for phase in (_P_NIC, _P_SA):
                lst = bucket[phase]
                if lst:
                    lst[:] = [ln for ln in lst if not lo <= ln < hi]
            lst = bucket[_P_GEN]
            if lst:
                lst[:] = [it for it in lst if it[0] != lane]
        if self.overflow:
            kept = [
                ent for ent in self.overflow
                if not (ent[1] == _P_GEN and ent[3][0] == lane)
            ]
            if len(kept) != len(self.overflow):
                self.overflow[:] = kept
                heapq.heapify(self.overflow)


class LockstepNetworks:
    """Generic batched driver: N independent networks advanced with
    the serial per-lane run protocol under one batched API.

    Works for any network implementing the shared protocol
    (``step()``, ``_sync()``, ``stats``, ``counters``, ``cycle``) —
    :class:`~repro.eval.dedicated.DedicatedNetwork` and any
    :class:`Network` kernel.  Each lane's method-call sequence is
    exactly the serial one, so bit-identity is structural; this driver
    amortizes nothing and exists so every design runs through the same
    batched entry points.
    """

    def __init__(self, lanes: Sequence[object]):
        if not lanes:
            raise ValueError("need at least one lane")
        self.lanes = list(lanes)

    def run_cycles(self, cycles: int) -> None:
        for net in self.lanes:
            for _ in range(cycles):
                net.step()
            net._sync()

    def run(
        self,
        warmup_cycles: int = 1000,
        measure_cycles: int = 20000,
        drain_limit: int = 100000,
    ) -> List[SimResult]:
        results = []
        for net in self.lanes:
            results.append(
                net.run(
                    warmup_cycles=warmup_cycles,
                    measure_cycles=measure_cycles,
                    drain_limit=drain_limit,
                )
            )
        return results


def _batched_driver(lanes: Sequence[object]):
    """Pick the specialized engine when every lane qualifies."""
    if all(
        type(net) is Network and net.kernel == "event" and net.cycle == 0
        and net.cfg.flits_per_packet <= net.cfg.vc_depth_flits
        for net in lanes
    ) and len(lanes) > 0:
        try:
            return BatchedEventNetworks(lanes)  # type: ignore[arg-type]
        except ValueError:
            pass  # structurally mismatched lanes: fall back
    return LockstepNetworks(lanes)


def run_batched(
    lanes: Sequence[object],
    warmup_cycles: int = 1000,
    measure_cycles: int = 20000,
    drain_limit: int = 100000,
) -> List[SimResult]:
    """Run N same-workload, different-seed lanes batched.

    Dispatches to :class:`BatchedEventNetworks` when every lane is a
    fresh ``kernel="event"`` :class:`Network`, otherwise to the generic
    :class:`LockstepNetworks` driver.  Returns per-lane
    :class:`SimResult`s in lane order, bit-identical to running each
    lane's :meth:`run` serially.
    """
    return _batched_driver(lanes).run(
        warmup_cycles=warmup_cycles,
        measure_cycles=measure_cycles,
        drain_limit=drain_limit,
    )


def batch_run_cycles(lanes: Sequence[object], cycles: int) -> None:
    """Advance N lanes a fixed number of cycles, batched (scripted
    tests and benchmarks)."""
    _batched_driver(lanes).run_cycles(cycles)
