"""Trace replay: timestamped packet captures through ``ScriptedTraffic``.

The paper's evaluation injects synthetic traffic at configured
bandwidths; real integrations start from a *capture* — a gem5 or
booksim-style list of ``(cycle, src, dst)`` packet injections.  This
module loads such traces from JSONL or CSV, derives the flow set (one
flow per observed (src, dst) pair, routed through the shared
conflict-minimising route-selection pipeline so SMART presets cover the
capture's paths) and replays the exact schedule through
:class:`~repro.sim.traffic.ScriptedTraffic`.

Replay is deterministic by construction — the schedule carries no RNG —
so a capture must produce **bit-identical** per-counter results on the
legacy, active and event kernels and on the batched lockstep engine.
:func:`replay_all_kernels` runs all three (plus a batched event lane)
and :func:`compare_results` reduces any divergence to a readable list;
the fuzz suite pins this with randomly generated traces.

Trace file formats
------------------

JSONL — one object per line; field aliases accepted (gem5/booksim
exports differ): ``cycle``/``time``/``tick``, ``src``/``source``,
``dst``/``dest``/``destination``::

    {"cycle": 12, "src": 0, "dst": 5}
    {"cycle": 14, "src": 3, "dst": 1}

CSV — a header line naming the same fields (any alias), then rows::

    cycle,src,dst
    12,0,5
    14,3,1
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.config import NocConfig
from repro.mapping.route_select import PlacedFlow
from repro.mapping.turn_model import TurnModel
from repro.sim.flow import Flow
from repro.sim.patterns import bandwidth_for_injection_rate
from repro.sim.stats import SimResult
from repro.sim.topology import Mesh
from repro.sim.traffic import ScriptedTraffic

#: Kernels a replay must agree across (plus the batched engine).
REPLAY_KERNELS = ("legacy", "active", "event")

#: Accepted column/field aliases, canonical name first.
_FIELD_ALIASES = {
    "cycle": ("cycle", "time", "tick"),
    "src": ("src", "source"),
    "dst": ("dst", "dest", "destination"),
}


@dataclasses.dataclass(frozen=True, order=True)
class TraceRecord:
    """One captured packet injection."""

    cycle: int
    src: int
    dst: int

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ValueError("trace cycle must be >= 0, got %d" % self.cycle)
        if self.src == self.dst:
            raise ValueError(
                "trace packet %d->%d is a self-loop" % (self.src, self.dst)
            )


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------

def _canonical_field(name: str) -> Optional[str]:
    lowered = name.strip().lower()
    for canonical, aliases in _FIELD_ALIASES.items():
        if lowered in aliases:
            return canonical
    return None


def _record_from_mapping(entry: Dict[str, object], where: str) -> TraceRecord:
    values: Dict[str, int] = {}
    for key, value in entry.items():
        canonical = _canonical_field(str(key))
        if canonical is not None and canonical not in values:
            values[canonical] = int(value)  # type: ignore[call-overload]
    missing = [field for field in ("cycle", "src", "dst") if field not in values]
    if missing:
        raise ValueError(
            "%s: missing field(s) %s (aliases: %s)"
            % (
                where,
                ", ".join(missing),
                "; ".join(
                    "%s=%s" % (k, "/".join(v)) for k, v in _FIELD_ALIASES.items()
                ),
            )
        )
    return TraceRecord(values["cycle"], values["src"], values["dst"])


def parse_trace_jsonl(text: str) -> List[TraceRecord]:
    """Records from JSONL text (one object per line, aliases accepted)."""
    records = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            entry = json.loads(line)
        except ValueError as exc:
            raise ValueError("line %d: invalid JSON (%s)" % (lineno, exc))
        if not isinstance(entry, dict):
            raise ValueError(
                "line %d: expected an object, got %r" % (lineno, entry)
            )
        records.append(_record_from_mapping(entry, "line %d" % lineno))
    return records


def parse_trace_csv(text: str) -> List[TraceRecord]:
    """Records from CSV text with a header naming cycle/src/dst fields."""
    header: Optional[List[Optional[str]]] = None
    records = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = [f.strip() for f in line.split(",")]
        if header is None:
            header = [_canonical_field(f) for f in fields]
            named = [f for f in header if f is not None]
            if not all(f in named for f in ("cycle", "src", "dst")):
                raise ValueError(
                    "line %d: header must name cycle, src and dst columns "
                    "(got %r)" % (lineno, line)
                )
            continue
        entry = {
            name: value
            for name, value in zip(header, fields)
            if name is not None
        }
        records.append(_record_from_mapping(entry, "line %d" % lineno))
    if header is None:
        return []
    return records


def load_trace(path: str) -> List[TraceRecord]:
    """Records from a trace file, sorted by (cycle, src, dst).

    ``.jsonl``/``.json`` parse as JSONL; anything else as header+CSV.
    """
    with open(path) as fh:
        text = fh.read()
    if path.lower().endswith((".jsonl", ".json")):
        records = parse_trace_jsonl(text)
    else:
        records = parse_trace_csv(text)
    return sorted(records)


def write_trace_jsonl(path: str, records: Sequence[TraceRecord]) -> None:
    """Write records as JSONL (the canonical capture interchange form)."""
    with open(path, "w") as fh:
        for record in records:
            fh.write(
                json.dumps(
                    {"cycle": record.cycle, "src": record.src, "dst": record.dst}
                )
                + "\n"
            )


# ----------------------------------------------------------------------
# Trace -> flows + schedule
# ----------------------------------------------------------------------

def trace_span(records: Sequence[TraceRecord]) -> int:
    """Cycles spanned by the capture (last injection cycle + 1)."""
    return max((r.cycle for r in records), default=-1) + 1


def trace_flows(
    cfg: NocConfig,
    records: Sequence[TraceRecord],
    turn_model: TurnModel = TurnModel.WEST_FIRST,
    routing: str = "minimal",
) -> Tuple[List[Flow], List[Tuple[int, int]]]:
    """Derive the flow set and injection schedule from a capture.

    One flow per observed (src, dst) pair, bandwidth set to the pair's
    *observed* mean rate over the capture span (packets / span) — the
    bandwidth only weights SMART preset derivation; the replayed
    schedule is the capture itself.  Returns ``(flows, schedule)`` where
    ``schedule`` is the ``(cycle, flow_id)`` list ``ScriptedTraffic``
    consumes.
    """
    # Imported here: repro.workloads sits above the sim layer.
    from repro.workloads import route_demands

    nodes = cfg.width * cfg.height
    counts: Dict[Tuple[int, int], int] = {}
    for record in records:
        if not (0 <= record.src < nodes and 0 <= record.dst < nodes):
            raise ValueError(
                "trace packet %d->%d is outside the %dx%d mesh"
                % (record.src, record.dst, cfg.width, cfg.height)
            )
        pair = (record.src, record.dst)
        counts[pair] = counts.get(pair, 0) + 1
    span = trace_span(records)
    placed = [
        PlacedFlow(
            flow_id=i,
            src=src,
            dst=dst,
            bandwidth_bps=bandwidth_for_injection_rate(cfg, count / span),
            name="trace:%d->%d" % (src, dst),
        )
        for i, ((src, dst), count) in enumerate(sorted(counts.items()))
    ]
    flows = route_demands(
        Mesh(cfg.width, cfg.height),
        placed,
        model=turn_model,
        routing=routing,
        hpc_max=cfg.hpc_max,
    )
    flow_ids = {
        (src, dst): i for i, (src, dst) in enumerate(sorted(counts))
    }
    schedule = [(r.cycle, flow_ids[(r.src, r.dst)]) for r in records]
    return flows, schedule


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------

def replay_trace(
    trace: Union[str, Sequence[TraceRecord]],
    cfg: NocConfig,
    design: str = "smart",
    kernel: str = "active",
    turn_model: TurnModel = TurnModel.WEST_FIRST,
    routing: str = "minimal",
    drain_limit: int = 100000,
) -> SimResult:
    """Replay a capture on one design/kernel and return its result.

    The measurement window is the full capture span (no warmup — every
    scripted packet is measured), followed by the usual drain.
    """
    from repro.eval.designs import build_design

    records = load_trace(trace) if isinstance(trace, str) else sorted(trace)
    flows, schedule = trace_flows(
        cfg, records, turn_model=turn_model, routing=routing
    )
    instance = build_design(
        design, cfg, flows, traffic=ScriptedTraffic(schedule), kernel=kernel
    )
    return instance.network.run(
        warmup_cycles=0,
        measure_cycles=trace_span(records),
        drain_limit=drain_limit,
    )


def replay_all_kernels(
    trace: Union[str, Sequence[TraceRecord]],
    cfg: NocConfig,
    design: str = "smart",
    turn_model: TurnModel = TurnModel.WEST_FIRST,
    routing: str = "minimal",
    drain_limit: int = 100000,
    batched: bool = True,
) -> Dict[str, SimResult]:
    """Replay a capture on every kernel (and one batched event lane).

    Returns kernel name -> result, with an extra ``"event+batched"``
    entry when ``batched`` (the lockstep engine driving a single-lane
    batch — exercising the batched code path on the same schedule).
    Feed the dict to :func:`compare_results` for the identity verdict.
    """
    from repro.eval.designs import build_design
    from repro.sim.batch import run_batched

    records = load_trace(trace) if isinstance(trace, str) else sorted(trace)
    results = {
        kernel: replay_trace(
            records, cfg, design=design, kernel=kernel,
            turn_model=turn_model, routing=routing, drain_limit=drain_limit,
        )
        for kernel in REPLAY_KERNELS
    }
    if batched:
        flows, schedule = trace_flows(
            cfg, records, turn_model=turn_model, routing=routing
        )
        instance = build_design(
            design, cfg, flows,
            traffic=ScriptedTraffic(schedule), kernel="event",
        )
        results["event+batched"] = run_batched(
            [instance.network],
            warmup_cycles=0,
            measure_cycles=trace_span(records),
            drain_limit=drain_limit,
        )[0]
    return results


#: SimResult attributes compared (beyond per-name counters) for identity.
_RESULT_ATTRS = (
    "measured_cycles",
    "total_cycles",
    "drained",
    "undelivered_measured",
)


def compare_results(
    results: Dict[str, SimResult], reference: str = "legacy"
) -> List[str]:
    """Per-counter identity check; returns human-readable mismatches.

    Empty list = every result is bit-identical to ``reference`` on all
    event counters, run-shape attributes and the packet-count/latency
    summary (the fuzz suite's notion of kernel equivalence).
    """
    mismatches: List[str] = []
    base = results[reference]
    base_counters = dataclasses.asdict(base.counters)
    for name, result in results.items():
        if name == reference:
            continue
        for counter, value in dataclasses.asdict(result.counters).items():
            if value != base_counters[counter]:
                mismatches.append(
                    "%s: counter %s = %r != %s %r"
                    % (name, counter, value, reference, base_counters[counter])
                )
        for attr in _RESULT_ATTRS:
            if getattr(result, attr) != getattr(base, attr):
                mismatches.append(
                    "%s: %s = %r != %s %r"
                    % (name, attr, getattr(result, attr), reference,
                       getattr(base, attr))
                )
        if result.summary.count != base.summary.count:
            mismatches.append(
                "%s: delivered %d packets != %s %d"
                % (name, result.summary.count, reference, base.summary.count)
            )
        elif result.summary.count and (
            result.summary.mean_head_latency != base.summary.mean_head_latency
        ):
            mismatches.append(
                "%s: mean head latency %r != %s %r"
                % (name, result.summary.mean_head_latency, reference,
                   base.summary.mean_head_latency)
            )
    return mismatches
