"""Packets, flits and credits.

A packet is split into flits sized to the link width (paper: 256-bit packets
as eight 32-bit flits).  The head flit carries the source route; body and
tail flits follow it through whatever path the head reserved (virtual
cut-through).  Credits carry a VC id back along the reverse credit mesh.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
from typing import List, Optional, Tuple

from repro.sim.topology import Port


class FlitType(enum.Enum):
    """Flit roles within a packet (§IV: head carries the route, body and
    tail follow the head's reservation under virtual cut-through)."""

    HEAD = "head"
    BODY = "body"
    TAIL = "tail"
    #: Single-flit packets are simultaneously head and tail.
    HEAD_TAIL = "head_tail"

    @property
    def is_head(self) -> bool:
        return self in (FlitType.HEAD, FlitType.HEAD_TAIL)

    @property
    def is_tail(self) -> bool:
        return self in (FlitType.TAIL, FlitType.HEAD_TAIL)


_packet_ids = itertools.count()


@dataclasses.dataclass
class Packet:
    """One network packet of a flow.

    Timestamps are filled in by the simulator:
      * ``create_cycle`` — cycle the packet entered the source NIC queue.
      * ``inject_cycle`` — cycle the head flit left the NIC.
      * ``head_arrive_cycle`` / ``tail_arrive_cycle`` — ejection times.
    """

    flow_id: int
    src: int
    dst: int
    size_flits: int
    create_cycle: int
    route: Tuple[Tuple[int, Port], ...] = ()
    pid: int = dataclasses.field(default_factory=lambda: next(_packet_ids))
    inject_cycle: Optional[int] = None
    head_arrive_cycle: Optional[int] = None
    tail_arrive_cycle: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size_flits < 1:
            raise ValueError("packets must have at least one flit")

    def flits(self) -> List["Flit"]:
        """Materialise this packet's flit sequence."""
        if self.size_flits == 1:
            return [Flit(self, FlitType.HEAD_TAIL, 0)]
        result = [Flit(self, FlitType.HEAD, 0)]
        result.extend(
            Flit(self, FlitType.BODY, i) for i in range(1, self.size_flits - 1)
        )
        result.append(Flit(self, FlitType.TAIL, self.size_flits - 1))
        return result

    @property
    def delivered(self) -> bool:
        return self.tail_arrive_cycle is not None

    @property
    def head_latency(self) -> int:
        """Cycles from NIC-queue entry to head ejection (inclusive).

        A packet created at the start of cycle c whose head is ejected at
        the end of cycle c has latency 1, matching Fig 7's single-cycle
        NIC-to-NIC traversals.
        """
        if self.head_arrive_cycle is None:
            raise ValueError("packet %d head not yet delivered" % self.pid)
        return self.head_arrive_cycle - self.create_cycle + 1

    @property
    def packet_latency(self) -> int:
        """Cycles from NIC-queue entry to tail ejection (inclusive)."""
        if self.tail_arrive_cycle is None:
            raise ValueError("packet %d not yet delivered" % self.pid)
        return self.tail_arrive_cycle - self.create_cycle + 1

    @property
    def network_latency(self) -> int:
        """Cycles spent in the network proper (injection to head ejection)."""
        if self.head_arrive_cycle is None or self.inject_cycle is None:
            raise ValueError("packet %d not yet delivered" % self.pid)
        return self.head_arrive_cycle - self.inject_cycle + 1

    def __repr__(self) -> str:
        return "Packet(pid=%d, flow=%d, %d->%d)" % (
            self.pid,
            self.flow_id,
            self.src,
            self.dst,
        )


#: (is_head, is_tail) per flit type, resolved once: the enum-property
#: indirection costs a tuple membership test per lookup, and every flit
#: construction needs both flags.
_FLIT_ROLES = {
    FlitType.HEAD: (True, False),
    FlitType.BODY: (False, False),
    FlitType.TAIL: (False, True),
    FlitType.HEAD_TAIL: (True, True),
}


@dataclasses.dataclass
class Flit:
    """A link-width slice of a packet (Table II: 32-bit flits, so a
    256-bit packet travels as eight flits)."""

    packet: Packet
    ftype: FlitType
    seq: int
    #: VC assigned at the current/last segment endpoint.
    vc: Optional[int] = None
    #: Head/tail role, cached as plain attributes: these are checked once
    #: or more per flit per pipeline stage, which makes the enum-property
    #: indirection a measurable simulation cost.
    is_head: bool = dataclasses.field(init=False)
    is_tail: bool = dataclasses.field(init=False)

    def __post_init__(self) -> None:
        self.is_head, self.is_tail = _FLIT_ROLES[self.ftype]

    def __repr__(self) -> str:
        return "Flit(%s #%d of %r, vc=%r)" % (
            self.ftype.value,
            self.seq,
            self.packet,
            self.vc,
        )


@dataclasses.dataclass(frozen=True)
class Credit:
    """A freed-VC notification travelling the reverse credit mesh (§IV
    Flow Control; Table II: 2-bit credit channels)."""

    vc: int

    def __repr__(self) -> str:
        return "Credit(vc=%d)" % self.vc
