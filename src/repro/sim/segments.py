"""Traversal segments: the unit of single-cycle movement in the network.

A *segment* is a maximal preset bypass chain: it starts where flits are
injected or arbitrated (a NIC, or a switch-allocated router output port) and
ends where flits are next latched (a buffered router input port, or the
destination NIC).  Under SMART a segment may span many routers and links —
all traversed combinationally in the sender's ST+link cycle (the §IV preset
bypass paths behind Fig 7's single-cycle traversals).  In the baseline mesh
every segment is a single hop.

The simulator moves flits segment-at-a-time; intermediate bypassed crossbars
and links only contribute power events, exactly mirroring the hardware where
bypassed routers never latch the flit.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple, Union

from repro.sim.topology import Port


@dataclasses.dataclass(frozen=True)
class NicStart:
    """Segment start at a source NIC (injection into C-in)."""

    node: int


@dataclasses.dataclass(frozen=True)
class OutputStart:
    """Segment start at a switch-allocated router output port."""

    node: int
    port: Port


@dataclasses.dataclass(frozen=True)
class BufferEnd:
    """Segment end at a buffered router input port (a 'stop')."""

    node: int
    port: Port


@dataclasses.dataclass(frozen=True)
class NicEnd:
    """Segment end at the destination NIC (ejection)."""

    node: int


SegmentStart = Union[NicStart, OutputStart]
SegmentEnd = Union[BufferEnd, NicEnd]


@dataclasses.dataclass(frozen=True)
class Segment:
    """One maximal bypass chain.

    Attributes:
        start: Where flits enter the segment.
        end: Where flits are latched next.
        hops: Router-to-router links traversed (= millimetres at 1 mm/hop).
        routers_crossed: Crossbars traversed combinationally, including the
            starting router's own crossbar for router-output starts.
        extra_cycles: Additional pipeline cycles for the traversal beyond
            the sender's ST cycle.  0 for SMART (crossbar+link share one
            cycle); 1 for the baseline mesh's separate link stage on
            router-to-router hops.
    """

    start: SegmentStart
    end: SegmentEnd
    hops: int
    routers_crossed: Tuple[int, ...]
    extra_cycles: int = 0

    def __post_init__(self) -> None:
        if self.hops < 0 or self.extra_cycles < 0:
            raise ValueError("segment hops/extra_cycles must be non-negative")

    @property
    def crossbar_traversals(self) -> int:
        """Crossbars a flit crosses on this segment (power events)."""
        return len(self.routers_crossed)

    def length_mm(self, mm_per_hop: float) -> float:
        return self.hops * mm_per_hop


class SegmentMap:
    """All segments of a configured network, indexed by start and by end.

    Each buffered input port / destination NIC has exactly one upstream
    segment (its input link has a single driver), so the reverse index is
    one-to-one; it is what routes credits back to the free-VC queue at the
    segment start (§IV Flow Control).
    """

    def __init__(self) -> None:
        self._by_start: Dict[SegmentStart, Segment] = {}
        self._by_end: Dict[SegmentEnd, Segment] = {}

    def add(self, segment: Segment) -> None:
        if segment.start in self._by_start:
            raise ValueError("duplicate segment start %r" % (segment.start,))
        if segment.end in self._by_end:
            raise ValueError(
                "two segments end at %r; an input port has a single driver"
                % (segment.end,)
            )
        self._by_start[segment.start] = segment
        self._by_end[segment.end] = segment

    def from_start(self, start: SegmentStart) -> Segment:
        try:
            return self._by_start[start]
        except KeyError:
            raise KeyError("no segment starts at %r" % (start,)) from None

    def ending_at(self, end: SegmentEnd) -> Segment:
        try:
            return self._by_end[end]
        except KeyError:
            raise KeyError("no segment ends at %r" % (end,)) from None

    def has_start(self, start: SegmentStart) -> bool:
        return start in self._by_start

    def segments(self) -> Tuple[Segment, ...]:
        return tuple(self._by_start.values())

    def __len__(self) -> int:
        return len(self._by_start)

    def max_hops(self) -> int:
        """Longest single-cycle chain (must be <= HPC_max)."""
        return max((s.hops for s in self._by_start.values()), default=0)
