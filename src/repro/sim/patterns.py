"""Synthetic traffic patterns over arbitrary mesh sizes.

The paper evaluates SMART on six SoC task graphs; circuit-switched NoC
follow-ups (ArSMART, SDM circuit switching) additionally characterise
designs with classic synthetic patterns swept to saturation.  This module
generates static flow sets for those patterns on any ``width x height``
mesh, routed XY (deadlock-free), at a per-node injection rate expressed in
packets/cycle.

Patterns (``src`` has coordinates ``(x, y)`` on a ``W x H`` mesh):

* ``uniform`` — each source picks one destination uniformly at random
  (seeded, excludes itself).
* ``transpose`` — ``(x, y) -> (y, x)``; requires a square mesh; diagonal
  nodes generate no traffic.
* ``bit_complement`` — ``(x, y) -> (W-1-x, H-1-y)``; the coordinate-wise
  complement generalises the classic bit-complement to non-power-of-two
  meshes.
* ``hotspot`` — every other node sends to one hotspot node (default: the
  most central node), the worst case for ejection-port serialisation.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.config import NocConfig
from repro.sim.flow import Flow, xy_route
from repro.sim.topology import Mesh

#: Supported synthetic pattern names.
PATTERNS = ("uniform", "transpose", "bit_complement", "hotspot")


def bandwidth_for_injection_rate(cfg: NocConfig, rate: float) -> float:
    """Bandwidth (bytes/s) that yields ``rate`` packet injections/cycle."""
    if rate < 0:
        raise ValueError("injection rate must be non-negative")
    bits_per_cycle = rate * cfg.flits_per_packet * cfg.flit_bits
    return bits_per_cycle * cfg.freq_hz / 8.0


def synthetic_flows(
    pattern: str,
    cfg: NocConfig,
    injection_rate: float,
    seed: int = 1,
    hotspot_node: Optional[int] = None,
) -> List[Flow]:
    """Build the flow set for one synthetic pattern on ``cfg``'s mesh.

    Args:
        pattern: One of :data:`PATTERNS`.
        cfg: Supplies mesh dimensions and the rate-to-bandwidth scaling.
        injection_rate: Packets/cycle injected by each sourcing node.
        seed: RNG seed for the ``uniform`` destination draw.
        hotspot_node: Destination for the ``hotspot`` pattern (default:
            the most central node of the mesh).
    """
    if pattern not in PATTERNS:
        raise ValueError(
            "unknown pattern %r (have %s)" % (pattern, ", ".join(PATTERNS))
        )
    mesh = Mesh(cfg.width, cfg.height)
    bandwidth = bandwidth_for_injection_rate(cfg, injection_rate)
    pairs = []
    if pattern == "uniform":
        rng = random.Random(seed)
        others = list(mesh.nodes())
        for src in mesh.nodes():
            dst = src
            while dst == src:
                dst = others[rng.randrange(len(others))]
            pairs.append((src, dst))
    elif pattern == "transpose":
        if mesh.width != mesh.height:
            raise ValueError(
                "transpose needs a square mesh, got %dx%d"
                % (mesh.width, mesh.height)
            )
        for src in mesh.nodes():
            x, y = mesh.coords(src)
            dst = mesh.node_at(y, x)
            if dst != src:
                pairs.append((src, dst))
    elif pattern == "bit_complement":
        for src in mesh.nodes():
            x, y = mesh.coords(src)
            dst = mesh.node_at(mesh.width - 1 - x, mesh.height - 1 - y)
            if dst != src:
                pairs.append((src, dst))
    else:  # hotspot
        if hotspot_node is None:
            hotspot_node = mesh.center_nodes()[0]
        if not 0 <= hotspot_node < mesh.num_nodes:
            raise ValueError("hotspot node %d outside mesh" % hotspot_node)
        for src in mesh.nodes():
            if src != hotspot_node:
                pairs.append((src, hotspot_node))
    return [
        Flow(
            flow_id=i,
            src=src,
            dst=dst,
            bandwidth_bps=bandwidth,
            route=xy_route(mesh, src, dst),
            name="%s:%d->%d" % (pattern, src, dst),
        )
        for i, (src, dst) in enumerate(pairs)
    ]
