"""Synthetic traffic patterns over arbitrary mesh sizes.

The paper evaluates SMART on six SoC task graphs; circuit-switched NoC
follow-ups (ArSMART, SDM circuit switching) additionally characterise
designs with classic synthetic patterns swept to saturation.  This module
generates the *demand sets* for those patterns on any ``width x height``
mesh: :func:`pattern_pairs` yields placed ``(src, dst, weight)`` demands
(``weight`` is the fraction of the per-node injection rate the demand
carries — 1.0 except for composite mixes), and :func:`synthetic_flows`
turns them into XY-routed flows at a per-node injection rate expressed in
packets/cycle.

The XY routes of :func:`synthetic_flows` are the quick, standalone path
(deadlock-free, zero choice).  The full paper pipeline — conflict-
minimising turn-model route selection followed by SMART preset
computation — is what :mod:`repro.workloads` applies to these same
demand sets; prefer that layer whenever a pattern is meant to be
*evaluated* rather than merely generated.

Patterns (``src`` has coordinates ``(x, y)`` on a ``W x H`` mesh; node
indices are row-major, ``node = y*W + x``):

* ``uniform`` — each source picks one destination uniformly at random
  (seeded, excludes itself).
* ``transpose`` — ``(x, y) -> (y, x)``; requires a square mesh; diagonal
  nodes generate no traffic.
* ``bit_complement`` — ``(x, y) -> (W-1-x, H-1-y)``; the coordinate-wise
  complement generalises the classic bit-complement to non-power-of-two
  meshes.
* ``hotspot`` — every other node sends to one hotspot node (default: the
  most central node), the worst case for ejection-port serialisation.
* ``shuffle`` — perfect shuffle on the node index: rotate the ``b``-bit
  index left by one (``d_i = s_{(i-1) mod b}``); needs a power-of-two
  node count; fixed points (all-zeros, all-ones) generate no traffic.
* ``bit_reverse`` — reverse the ``b``-bit node index; needs a
  power-of-two node count; palindromic indices generate no traffic.
* ``background_hotspot`` — composite mix: uniform background carrying
  :data:`BACKGROUND_FRACTION` of the per-node rate plus a hotspot
  overlay carrying the rest.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.config import NocConfig
from repro.sim.flow import Flow, xy_route
from repro.sim.topology import Mesh

#: Supported synthetic pattern names.
PATTERNS = (
    "uniform",
    "transpose",
    "bit_complement",
    "hotspot",
    "shuffle",
    "bit_reverse",
    "background_hotspot",
)

#: Fraction of the per-node rate carried by the uniform background in the
#: ``background_hotspot`` mix (the remainder goes to the hotspot overlay).
BACKGROUND_FRACTION = 0.8


def bandwidth_for_injection_rate(cfg: NocConfig, rate: float) -> float:
    """Bandwidth (bytes/s) that yields ``rate`` packet injections/cycle."""
    if rate < 0:
        raise ValueError("injection rate must be non-negative")
    bits_per_cycle = rate * cfg.flits_per_packet * cfg.flit_bits
    return bits_per_cycle * cfg.freq_hz / 8.0


def _index_bits(mesh: Mesh, pattern: str) -> int:
    """Bit width of the node index; raises unless it is a power of two."""
    n = mesh.num_nodes
    if n < 2 or n & (n - 1):
        raise ValueError(
            "%s needs a power-of-two node count, got %d (%dx%d mesh)"
            % (pattern, n, mesh.width, mesh.height)
        )
    return n.bit_length() - 1


def _uniform_pairs(mesh: Mesh, seed: int) -> List[Tuple[int, int]]:
    rng = random.Random(seed)
    others = list(mesh.nodes())
    pairs = []
    for src in mesh.nodes():
        dst = src
        while dst == src:
            dst = others[rng.randrange(len(others))]
        pairs.append((src, dst))
    return pairs


def _hotspot_pairs(mesh: Mesh, hotspot_node: Optional[int]) -> List[Tuple[int, int]]:
    if hotspot_node is None:
        hotspot_node = mesh.center_nodes()[0]
    if not 0 <= hotspot_node < mesh.num_nodes:
        raise ValueError("hotspot node %d outside mesh" % hotspot_node)
    return [(src, hotspot_node) for src in mesh.nodes() if src != hotspot_node]


def pattern_pairs(
    pattern: str,
    mesh: Mesh,
    seed: int = 1,
    hotspot_node: Optional[int] = None,
    background_fraction: float = BACKGROUND_FRACTION,
) -> List[Tuple[int, int, float]]:
    """Placed ``(src, dst, weight)`` demands for one pattern on ``mesh``.

    ``weight`` is the fraction of the per-node injection rate the demand
    carries: 1.0 for the simple patterns, and the background/overlay
    split for ``background_hotspot``.  Self-loops (pattern fixed points)
    are dropped — those nodes generate no traffic.

    Args:
        pattern: One of :data:`PATTERNS`.
        mesh: Target mesh (supplies dimensions and node indexing).
        seed: RNG seed for the ``uniform`` destination draw (also used by
            the uniform background of ``background_hotspot``).
        hotspot_node: Destination for the ``hotspot`` pattern and the
            hotspot overlay (default: the most central node).
        background_fraction: Per-node rate fraction of the uniform
            background in ``background_hotspot`` (must be in (0, 1)).
    """
    if pattern not in PATTERNS:
        raise ValueError(
            "unknown pattern %r (have %s)" % (pattern, ", ".join(PATTERNS))
        )
    if pattern == "uniform":
        pairs = _uniform_pairs(mesh, seed)
    elif pattern == "transpose":
        if mesh.width != mesh.height:
            raise ValueError(
                "transpose needs a square mesh, got %dx%d"
                % (mesh.width, mesh.height)
            )
        pairs = []
        for src in mesh.nodes():
            x, y = mesh.coords(src)
            dst = mesh.node_at(y, x)
            if dst != src:
                pairs.append((src, dst))
    elif pattern == "bit_complement":
        pairs = []
        for src in mesh.nodes():
            x, y = mesh.coords(src)
            dst = mesh.node_at(mesh.width - 1 - x, mesh.height - 1 - y)
            if dst != src:
                pairs.append((src, dst))
    elif pattern == "hotspot":
        pairs = _hotspot_pairs(mesh, hotspot_node)
    elif pattern == "shuffle":
        bits = _index_bits(mesh, pattern)
        mask = mesh.num_nodes - 1
        pairs = []
        for src in mesh.nodes():
            dst = ((src << 1) | (src >> (bits - 1))) & mask
            if dst != src:
                pairs.append((src, dst))
    elif pattern == "bit_reverse":
        bits = _index_bits(mesh, pattern)
        pairs = []
        for src in mesh.nodes():
            dst = int(format(src, "0%db" % bits)[::-1], 2)
            if dst != src:
                pairs.append((src, dst))
    else:  # background_hotspot: uniform background + hotspot overlay
        if not 0.0 < background_fraction < 1.0:
            raise ValueError(
                "background fraction must be in (0, 1), got %g"
                % background_fraction
            )
        overlay = 1.0 - background_fraction
        return (
            [(s, d, background_fraction) for s, d in _uniform_pairs(mesh, seed)]
            + [(s, d, overlay) for s, d in _hotspot_pairs(mesh, hotspot_node)]
        )
    return [(src, dst, 1.0) for src, dst in pairs]


def synthetic_flows(
    pattern: str,
    cfg: NocConfig,
    injection_rate: float,
    seed: int = 1,
    hotspot_node: Optional[int] = None,
) -> List[Flow]:
    """Build the XY-routed flow set for one synthetic pattern.

    Args:
        pattern: One of :data:`PATTERNS`.
        cfg: Supplies mesh dimensions and the rate-to-bandwidth scaling.
        injection_rate: Packets/cycle injected by each sourcing node
            (split across its demands by their weights).
        seed: RNG seed for the ``uniform`` destination draw.
        hotspot_node: Destination for the ``hotspot`` pattern (default:
            the most central node of the mesh).
    """
    mesh = Mesh(cfg.width, cfg.height)
    bandwidth = bandwidth_for_injection_rate(cfg, injection_rate)
    return [
        Flow(
            flow_id=i,
            src=src,
            dst=dst,
            bandwidth_bps=weight * bandwidth,
            route=xy_route(mesh, src, dst),
            name="%s:%d->%d" % (pattern, src, dst),
        )
        for i, (src, dst, weight) in enumerate(
            pattern_pairs(pattern, mesh, seed=seed, hotspot_node=hotspot_node)
        )
    ]
