"""Cycle-accurate simulator for SMART and baseline-mesh NoCs.

One ``Network`` simulates any configuration expressible as (a) a per-router
split of input ports into *buffered* (stop) and *bypassed* ports, and (b) a
``SegmentMap`` describing where flits travel in a single ST(+link) cycle.
The baseline mesh is simply the configuration in which every used input
port is buffered and every segment is one hop with an extra link cycle.

Pipeline timing (paper Fig 6/7):

* A flit arriving at a buffered input at the end of cycle T is written
  during T+1 (BW), arbitrates from T+2 (SA) and, if granted, traverses the
  crossbar plus its entire outgoing segment during T+3 (ST+link).
* A NIC injects during cycle c; on a fully bypassed path the flit reaches
  the destination NIC at the end of that same cycle c — the single-cycle
  NIC-to-NIC traversal of Fig 7.
* Switch allocation is per-packet (virtual cut-through): a granted output
  port streams the packet's flits on consecutive cycles.

Three execution kernels share this timing model:

* ``kernel="active"`` (default) maintains explicit *active sets* — routers
  holding live reservations or buffered flits, NICs with queued or
  streaming packets, and a heap of pre-drawn per-flow injection cycles —
  so :meth:`Network.step` touches only components with work to do.  Idle
  cycles cost O(1).
* ``kernel="event"`` goes one step further: switch allocation runs only
  when a wake condition (head eligibility, credit return, output
  release) can change its outcome, and every granted stream — provably
  deterministic once granted — collapses into a *single* scheduled heap
  event at its tail cycle that performs the buffer reads, writes,
  credit return and stats updates for the whole traversal
  (fully-bypassed packets are one event NIC to NIC).  Streams ending at
  an intermediate stop chain too: only their head flit is delivered
  per-cycle (it is what switch allocation downstream observes); the
  rest of the packet joins a *chain dependency graph* — who feeds whom
  across hand-off buffers — and is settled feeder-before-consumer, so
  a whole producer -> consumer cascade replays as a few events instead
  of per-cycle stepping.  Counter snapshots settle in-flight chains
  first (in dependency order), so every count lands in the same
  measurement window as a per-cycle execution (see ``docs/kernel.md``).
* ``kernel="legacy"`` iterates every router, buffer and NIC every cycle,
  exactly as the original simulator did; it exists as a regression
  reference (see ``docs/kernel.md``).

All kernels produce identical results: phase effects never cross a cycle
boundary early (a flit written at cycle ``c`` is SA-eligible from ``c+2``;
a credit freed at ``c`` is usable from ``c+1+credit_latency``), so
skipping provably-idle components — or running their state updates from
scheduled events at exactly the cycles the per-cycle scans would have —
cannot change behaviour.
"""

from __future__ import annotations

import dataclasses
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

import collections
import heapq
import itertools

from repro.config import NocConfig
from repro.sim import sanitizer
from repro.sim.arbiter import RoundRobinArbiter
from repro.sim.buffers import FreeVcQueue, InputBuffer
from repro.sim.flow import Flow, validate_flow_set
from repro.sim.packet import Flit, Packet
from repro.sim.segments import (
    BufferEnd,
    NicEnd,
    NicStart,
    OutputStart,
    Segment,
    SegmentMap,
)
from repro.sim.stats import EventCounters, SimResult, StatsCollector
from repro.sim.topology import Mesh, Port
from repro.sim.traffic import TrafficModel

#: Execution kernels accepted by :class:`Network`.
KERNELS = ("active", "legacy", "event")


@dataclasses.dataclass(frozen=True)
class RouterConfig:
    """Which ports of one router are stops vs. preset bypasses (§IV:
    preset routers hold bypass settings until reconfiguration)."""

    node: int
    buffered_inputs: Tuple[Port, ...]
    bypassed_inputs: Tuple[Port, ...]
    dynamic_outputs: Tuple[Port, ...]

    def __post_init__(self) -> None:
        overlap = set(self.buffered_inputs) & set(self.bypassed_inputs)
        if overlap:
            raise ValueError(
                "router %d ports both buffered and bypassed: %r"
                % (self.node, sorted(p.name for p in overlap))
            )


@dataclasses.dataclass
class _Reservation:
    """A switch-allocated output port streaming one packet."""

    out_port: Port
    in_port: Port
    vc_id: int
    packet: Packet
    segment: Segment
    assigned_vc: int
    flits_left: int
    next_send_cycle: int
    #: The source VirtualChannel object, cached to skip two lookups on
    #: every flit of the stream.
    vc: object = None
    #: Creation order across the network, matching the insertion order of
    #: ``router.reservations`` — the event kernel orders same-cycle chain
    #: finish events on it so they replay in the legacy scan order.
    ins: int = 0
    #: Event-kernel delivery context for live (per-cycle) streams:
    #: (target router, target buffer, crossbars crossed, link mm, extra
    #: cycles, segment end), resolved once at grant so the per-flit send
    #: needs no lookups.
    ctx: Optional[tuple] = None


class _Router:
    """Runtime state of one router."""

    def __init__(self, config: RouterConfig, cfg: NocConfig):
        self.node = config.node
        self.config = config
        self.buffers: Dict[Port, InputBuffer] = {
            port: InputBuffer(cfg.vcs_per_port, cfg.vc_depth_flits)
            for port in config.buffered_inputs
        }
        clients = [
            (port, vc)
            for port in config.buffered_inputs
            for vc in range(cfg.vcs_per_port)
        ]
        self.arbiters: Dict[Port, RoundRobinArbiter] = {}
        if clients:
            for out_port in config.dynamic_outputs:
                self.arbiters[out_port] = RoundRobinArbiter(clients)
        self.reservations: Dict[Port, _Reservation] = {}
        self.input_streaming: Dict[Port, bool] = {
            port: False for port in config.buffered_inputs
        }
        #: Flits currently buffered across all input VCs (kept up to date
        #: by the network's deliver/read paths, replacing a per-cycle scan).
        self.occupancy = 0
        #: Buffered head flits not yet read out; switch allocation can
        #: only grant while this is non-zero, so the kernel skips the SA
        #: scan entirely when it is 0.
        self.sa_pending = 0
        # Event-kernel bookkeeping: the reservations still streamed by
        # the per-cycle ST scan (chained reservations are finished by
        # heap events instead); the buffered-but-unread head flits,
        # keyed by (input port, VC id) so switch allocation scans only
        # actual candidates instead of sweeping every VC; the last
        # cycle an SA scan ran (duplicate wakes within a cycle are
        # no-ops); and per-output segment/free-VC-queue caches.
        self.live: List[_Reservation] = []
        self.head_slots: Dict[Tuple[Port, int], object] = {}
        self.sa_cycle = -1
        self.out_segment: Dict[Port, Segment] = {}
        self.out_freeq: Dict[Port, FreeVcQueue] = {}

    @property
    def active(self) -> bool:
        """True if anything is buffered or streaming (clock not gated)."""
        return bool(self.reservations) or self.occupancy > 0


class _NicSink:
    """Receive side of a NIC: consumes flits, frees sink VCs."""

    def __init__(self, node: int, num_vcs: int):
        self.node = node
        self.num_vcs = num_vcs
        self.flits_received = 0
        self.packets_received = 0


class _NicSource:
    """Send side of a NIC: per-flow packet queues and one injection port."""

    def __init__(self, node: int, flows: Sequence[Flow]):
        self.node = node
        self.flows: List[Flow] = list(flows)
        self.queues: Dict[int, Deque[Packet]] = {
            flow.flow_id: collections.deque() for flow in self.flows
        }
        self.rr = RoundRobinArbiter([f.flow_id for f in self.flows]) if self.flows else None
        #: (packet, remaining flit list, assigned downstream VC)
        self.stream: Optional[Tuple[Packet, List[Flit], int]] = None
        #: Total queued packets, maintained incrementally by the network
        #: so the injection path need not sum the per-flow deques.
        self.queued = 0

    def queued_packets(self) -> int:
        return self.queued


class _NicChain:
    """A fully-bypassed NIC-to-NIC packet traversal, run as one event.

    Created by the event kernel when an injected packet's chain ends at
    the destination NIC: every flit send is then deterministic (a NIC
    streams unconditionally and nothing downstream is latched), so the
    whole ST traversal is scheduled as a single heap event at the tail
    cycle.  :meth:`advance` lazily performs the flit sends with
    send-cycle <= ``through`` — the finish event passes the tail cycle,
    and counter snapshots settle partial progress at window boundaries
    so every count lands in the same measurement window as a per-cycle
    execution.
    """

    __slots__ = ("net", "node", "flits", "vc_id", "segment", "sink", "idx",
                 "next_send", "end_cycle", "cid")

    def __init__(self, net, nic_node, flits, vc_id, segment, start_cycle):
        self.net = net
        self.node = nic_node
        self.flits = flits
        self.vc_id = vc_id
        self.segment = segment
        self.sink = net.nic_sinks[segment.end.node]
        self.idx = 0
        self.next_send = start_cycle
        self.end_cycle = start_cycle + len(flits) - 1
        self.cid = next(net._chain_seq)

    def advance(self, through: int) -> None:
        last = self.end_cycle
        if through < last:
            last = through
        cycle = self.next_send
        if cycle > last:
            return
        net = self.net
        counters = net.counters
        segment = self.segment
        crossed = len(segment.routers_crossed)
        hop_mm = segment.hops * net._mm_per_hop
        extra = segment.extra_cycles
        sink = self.sink
        flits = self.flits
        vc_id = self.vc_id
        idx = self.idx
        count = last - cycle + 1
        counters.crossbar_traversals += crossed * count
        counters.link_flit_mm += hop_mm * count
        counters.pipeline_latches += count
        sink.flits_received += count
        while cycle <= last:
            flit = flits[idx]
            idx += 1
            flit.vc = vc_id
            if flit.is_head:
                flit.packet.head_arrive_cycle = cycle + extra
            if flit.is_tail:
                packet = flit.packet
                packet.tail_arrive_cycle = cycle + extra
                sink.packets_received += 1
                net.stats.on_deliver(packet)
                net._ev_credit_end(segment.end, vc_id, cycle + extra)
            cycle += 1
        self.idx = idx
        self.next_send = cycle


class _ResChain:
    """A reserved output streaming its whole packet as one event.

    Created by the event kernel at grant time for every reservation
    whose segment ends at the destination NIC: its reads can never
    stall (see the no-stall induction in the event-kernel section), so
    they are replayed in one tight loop by the finish event at the tail
    cycle — or partially by a counter-snapshot settlement — instead of
    one per-cycle send each.
    """

    __slots__ = ("net", "router", "res", "vc", "feeder", "next_send",
                 "end_cycle", "cid")

    def __init__(self, net, router, res, start_cycle):
        self.net = net
        self.router = router
        self.res = res
        self.vc = res.vc
        #: The chain (if any) deferring writes into the VC this stream
        #: reads from; settled first so replayed reads find their flits.
        self.feeder = net._chain_writers.get(
            (router.node, res.in_port, res.vc_id)
        )
        self.next_send = start_cycle
        self.end_cycle = start_cycle + res.flits_left - 1
        self.cid = next(net._chain_seq)

    def advance(self, through: int) -> None:
        last = self.end_cycle
        if through < last:
            last = through
        cycle = self.next_send
        if cycle > last:
            return
        feeder = self.feeder
        if feeder is not None:
            feeder.advance(through)
        net = self.net
        counters = net.counters
        res = self.res
        router = self.router
        vc = self.vc
        segment = res.segment
        crossed = len(segment.routers_crossed)
        hop_mm = segment.hops * net._mm_per_hop
        extra = segment.extra_cycles
        sink = net.nic_sinks[segment.end.node]
        assigned = res.assigned_vc
        vc_fifo = vc._fifo
        vc_elig = vc._eligible
        # Counter totals batched outside the loop (bit-exact: integral
        # event counts and integral per-hop millimetres); the head's
        # ``head_slots`` entry was already dropped at grant (granted
        # inputs are invisible to SA), so the loop — the kernel's
        # hottest path, inlining VirtualChannel.read() — replays only
        # fifo state and the head/tail packet events.
        count = last - cycle + 1
        counters.buffer_reads += count
        counters.crossbar_traversals += crossed * count
        counters.link_flit_mm += hop_mm * count
        counters.pipeline_latches += count
        sink.flits_received += count
        router.occupancy -= count
        res.flits_left -= count
        res.next_send_cycle = last + 1
        while cycle <= last:
            vc_elig.popleft()
            flit = vc_fifo.popleft()
            flit.vc = assigned
            if flit.is_head:
                flit.packet.head_arrive_cycle = cycle + extra
            if flit.is_tail:
                vc.busy = False
                packet = flit.packet
                packet.tail_arrive_cycle = cycle + extra
                sink.packets_received += 1
                net.stats.on_deliver(packet)
                net._ev_credit_end(segment.end, assigned, cycle + extra)
            cycle += 1
        self.next_send = cycle


class _MidChain:
    """A reserved output streaming into a buffered stop, as one event.

    Created by the event kernel right after a non-final stream sends its
    head flit: the head must travel per-cycle (its buffer write is what
    downstream switch allocation and clock gating observe at exact
    cycles), but the remaining flits are deterministic — the generalized
    read-lag induction: this stream's reads trail its feeder's
    contiguous sends by >= 3 cycles at *every* hand-off, not just the
    final one, and body/tail writes into the hand-off buffer have no
    per-cycle observers (heads alone drive SA; the consumer's reads are
    themselves deferred, and the eager head keeps the occupancy's
    zero/nonzero trajectory exact for clock accounting).

    The chain registers itself in the network's ``_chain_writers`` map —
    the chain dependency graph's edges — so the consumer stream reading
    the hand-off VC links back to it as ``feeder`` and settlement
    replays writes before the reads that consume them.
    """

    __slots__ = ("net", "router", "res", "vc", "feeder", "writer_key",
                 "next_send", "end_cycle", "cid")

    def __init__(self, net, router, res, start_cycle):
        self.net = net
        self.router = router
        self.res = res
        self.vc = res.vc
        self.feeder = net._chain_writers.get(
            (router.node, res.in_port, res.vc_id)
        )
        end = res.ctx[5]
        self.writer_key = (end.node, end.port, res.assigned_vc)
        net._chain_writers[self.writer_key] = self
        self.next_send = start_cycle
        self.end_cycle = start_cycle + res.flits_left - 1
        self.cid = next(net._chain_seq)

    def advance(self, through: int) -> None:
        last = self.end_cycle
        if through < last:
            last = through
        cycle = self.next_send
        if cycle > last:
            return
        feeder = self.feeder
        if feeder is not None:
            feeder.advance(through)
        net = self.net
        counters = net.counters
        res = self.res
        router = self.router
        vc = self.vc
        t_router, t_buffer, crossed, hop_mm, extra, _end = res.ctx
        assigned = res.assigned_vc
        t_vc = t_buffer.vcs[assigned]
        t_fifo = t_vc._fifo
        t_elig = t_vc._eligible
        depth = t_vc.depth
        vc_fifo = vc._fifo
        vc_elig = vc._eligible
        # Counter totals are batched outside the loop (integral event
        # counts and integral per-hop millimetres, so the sums are
        # bit-exact); the loop replays only the state the per-cycle
        # path would have left behind.  Never a head flit — the head
        # went out on the per-cycle path.
        count = last - cycle + 1
        counters.buffer_reads += count
        counters.buffer_writes += count
        counters.crossbar_traversals += crossed * count
        counters.link_flit_mm += hop_mm * count
        counters.pipeline_latches += count
        router.occupancy -= count
        t_router.occupancy += count
        res.flits_left -= count
        res.next_send_cycle = last + 1
        if len(t_fifo) + count > depth:
            raise OverflowError(
                "VC %d overflow: virtual cut-through guarantees violated"
                % t_vc.vc_id
            )
        if last == self.end_cycle:
            vc.busy = False  # the tail flit is read in this batch
        while cycle <= last:
            vc_elig.popleft()
            flit = vc_fifo.popleft()
            flit.vc = assigned
            t_fifo.append(flit)
            t_elig.append(cycle + extra + 2)
            cycle += 1
        net._ev_activate(t_router)
        self.next_send = cycle


class _NicMidChain:
    """A NIC streaming the rest of its packet into a buffered first
    stop, as one event.

    The NIC-side analogue of :class:`_MidChain`: the head flit is
    injected per-cycle (it arms downstream switch allocation), then the
    remaining flits — a NIC streams unconditionally, so their send
    cycles are fixed at injection — defer into the chain dependency
    graph as the writer of the hand-off VC.
    """

    __slots__ = ("net", "node", "packet", "flits", "vc_id", "t_router",
                 "t_vc", "crossed", "hop_mm", "extra", "writer_key",
                 "idx", "next_send", "end_cycle", "cid")

    def __init__(self, net, nic_node, packet, flits, vc_id, ctx, start_cycle):
        self.net = net
        self.node = nic_node
        self.packet = packet
        self.flits = flits
        self.vc_id = vc_id
        _seg, _fq, t_router, t_buffer, crossed, hop_mm, extra, _sink, end = ctx
        self.t_router = t_router
        self.t_vc = t_buffer.vcs[vc_id]
        self.crossed = crossed
        self.hop_mm = hop_mm
        self.extra = extra
        self.writer_key = (end.node, end.port, vc_id)
        net._chain_writers[self.writer_key] = self
        self.idx = 0
        self.next_send = start_cycle
        self.end_cycle = start_cycle + len(flits) - 1
        self.cid = next(net._chain_seq)

    def advance(self, through: int) -> None:
        last = self.end_cycle
        if through < last:
            last = through
        cycle = self.next_send
        if cycle > last:
            return
        net = self.net
        counters = net.counters
        t_router = self.t_router
        t_vc = self.t_vc
        t_fifo = t_vc._fifo
        t_elig = t_vc._eligible
        depth = t_vc.depth
        crossed = self.crossed
        hop_mm = self.hop_mm
        extra = self.extra
        flits = self.flits
        vc_id = self.vc_id
        idx = self.idx
        count = last - cycle + 1
        counters.crossbar_traversals += crossed * count
        counters.link_flit_mm += hop_mm * count
        counters.pipeline_latches += count
        counters.buffer_writes += count
        t_router.occupancy += count
        if len(t_fifo) + count > depth:
            raise OverflowError(
                "VC %d overflow: virtual cut-through guarantees violated"
                % t_vc.vc_id
            )
        while cycle <= last:
            flit = flits[idx]
            idx += 1
            flit.vc = vc_id
            t_fifo.append(flit)
            t_elig.append(cycle + extra + 2)
            cycle += 1
        net._ev_activate(t_router)
        self.idx = idx
        self.next_send = cycle


#: NIC stream states that are scheduled chains (a live mid-packet NIC
#: stream is a plain tuple instead).
_NIC_CHAIN_TYPES = (_NicChain, _NicMidChain)


class Network:
    """A configured NoC instance ready to simulate (the three-stage
    BW -> SA -> ST+link pipeline of Fig 6, including Fig 7's single-cycle
    multi-hop bypass traversals)."""

    def __init__(
        self,
        cfg: NocConfig,
        mesh: Mesh,
        flows: Sequence[Flow],
        router_configs: Dict[int, RouterConfig],
        segment_map: SegmentMap,
        traffic: TrafficModel,
        kernel: str = "active",
        sanitize: Optional[bool] = None,
    ):
        if kernel not in KERNELS:
            raise ValueError(
                "unknown kernel %r (have %s)"
                % (kernel, ", ".join(repr(k) for k in KERNELS))
            )
        validate_flow_set(list(flows), mesh)
        self.kernel = kernel
        #: Sanitize mode: cross-check kernel-internal invariants after
        #: every step (see repro.sim.sanitizer).  Defaults to the
        #: SMART_SANITIZE environment flag.
        self.sanitize = sanitizer.resolve(sanitize)
        self.cfg = cfg
        self._mm_per_hop = cfg.mm_per_hop
        self.mesh = mesh
        self.flows = list(flows)
        self.flow_by_id = {f.flow_id: f for f in self.flows}
        self.segments = segment_map
        self.traffic = traffic
        self.counters = EventCounters()
        self.stats = StatsCollector(
            tenants={f.flow_id: f.tenant for f in self.flows if f.tenant}
        )
        self.cycle = 0

        self.routers: Dict[int, _Router] = {
            node: _Router(rc, cfg) for node, rc in router_configs.items()
        }
        for node in mesh.nodes():
            if node not in self.routers:
                self.routers[node] = _Router(
                    RouterConfig(node, (), (), ()), cfg
                )

        #: Per-flow out-port at each router it stops at or traverses.
        self._flow_out: Dict[int, Dict[int, Port]] = {}
        self._flow_route: Dict[int, Tuple[Tuple[int, Port], ...]] = {}
        for flow in self.flows:
            traversals = flow.port_traversals(mesh)
            self._flow_out[flow.flow_id] = {
                node: out for node, _inp, out in traversals
            }
            self._flow_route[flow.flow_id] = tuple(
                (node, out) for node, _inp, out in traversals
            )

        # Free-VC queues, one per segment start.
        self.free_vcs: Dict[object, FreeVcQueue] = {}
        for segment in segment_map.segments():
            self.free_vcs[segment.start] = FreeVcQueue(cfg.vcs_per_port)

        #: Per-segment delivery target, resolved once: (router, buffer)
        #: for buffered ends, (None, None) for NIC ends.  Keyed by the
        #: segment object's id — the map owns the segments, so ids are
        #: stable for the network's lifetime.
        self._seg_target: Dict[int, Tuple[Optional[_Router], Optional[InputBuffer]]] = {}
        for segment in segment_map.segments():
            end = segment.end
            if isinstance(end, BufferEnd):
                router = self.routers[end.node]
                # repro-lint: ok DET001 -- lookup-only key; the segment
                # map owns the segments and nothing iterates this dict
                self._seg_target[id(segment)] = (
                    router, router.buffers.get(end.port)
                )
            else:
                # repro-lint: ok DET001 -- lookup-only key, as above
                self._seg_target[id(segment)] = (None, None)

        self.nic_sources: Dict[int, _NicSource] = {}
        for node in mesh.nodes():
            node_flows = [f for f in self.flows if f.src == node]
            if node_flows:
                if not segment_map.has_start(NicStart(node)):
                    raise ValueError(
                        "node %d sources flows but has no injection segment"
                        % node
                    )
                self.nic_sources[node] = _NicSource(node, node_flows)
        self.nic_sinks: Dict[int, _NicSink] = {
            node: _NicSink(node, cfg.vcs_per_port)
            for node in mesh.nodes()
            if any(f.dst == node for f in self.flows)
        }
        self._validate_against_segments()

        # Active-set kernel state.  ``_active_routers`` is kept a superset
        # of routers with reservations or buffered flits (pruned lazily),
        # ``_active_nics`` a superset of NICs with queued or streaming
        # packets, and ``_inject_heap`` holds (next_injection_cycle,
        # flow_id) pairs pre-drawn from the traffic model.
        self._active_routers: Set[int] = set()
        self._active_nics: Set[int] = set()
        self._inject_heap: List[Tuple[int, int]] = []
        #: Monotonic reservation-creation counter; the event kernel keys
        #: same-cycle chain-finish events on it so they replay in the
        #: legacy scan order.
        self._res_seq = itertools.count()
        if self.kernel in ("active", "event"):
            for nic in self.nic_sources.values():
                for flow in nic.flows:
                    nxt = traffic.next_injection_cycle(flow, 0)
                    if nxt is not None:
                        self._inject_heap.append((nxt, flow.flow_id))
            heapq.heapify(self._inject_heap)

        # Event-kernel state.  Deterministic chain traversals are
        # scheduled on finish heaps (one event per chain, popped at the
        # tail cycle); `_sa_heap` holds (cycle, node) switch-allocation
        # wakes — SA runs only when a scan's outcome can change;
        # `_chains` tracks in-flight chains for partial settlement at
        # counter-snapshot boundaries; the remaining dicts are
        # construction-time caches resolved by `_ev_init`.
        self._chain_seq = itertools.count()
        self._chains: Dict[int, object] = {}
        #: Chain dependency graph: (node, in_port, vc_id) of a hand-off
        #: buffer VC -> the chain currently deferring writes into it.
        #: Consumers of that VC link back to the writer as ``feeder``
        #: and settlement replays feeders before their consumers.
        self._chain_writers: Dict[Tuple[int, Port, int], object] = {}
        #: Routers with live (per-cycle) streams — only the head sends
        #: of fresh grants and un-chained remainders; pruned as their
        #: live lists drain so the ST phase scans no idle routers.
        self._st_routers: Set[int] = set()
        #: Sum of len(router.buffers) over `_active_routers`.  The event
        #: kernel maintains active-set membership *exactly* (updated at
        #: every occupancy/reservation transition, which it fully
        #: controls), so per-cycle clock accounting is O(1): count the
        #: set size and this cached port total instead of scanning.
        self._clock_ports = 0
        self._res_finish_heap: List[tuple] = []
        self._nic_finish_heap: List[tuple] = []
        self._sa_heap: List[Tuple[int, int]] = []
        self._nic_ctx: Dict[int, tuple] = {}
        self._credit_up: Dict[Tuple[int, Port], tuple] = {}
        self._credit_end: Dict[int, tuple] = {}
        self._credit_latency = cfg.credit_latency
        if self.kernel == "event":
            self._ev_init()

    # ------------------------------------------------------------------
    # Construction-time validation
    # ------------------------------------------------------------------

    def _validate_against_segments(self) -> None:
        """Every flow must decompose into a chain of known segments."""
        for flow in self.flows:
            for segment in self.flow_segments(flow):
                if segment.hops > self.cfg.hpc_max:
                    raise ValueError(
                        "segment %r spans %d hops > HPC_max=%d"
                        % (segment, segment.hops, self.cfg.hpc_max)
                    )

    def flow_segments(self, flow: Flow) -> List[Segment]:
        """The segment chain a packet of ``flow`` traverses."""
        chain: List[Segment] = []
        segment = self.segments.from_start(NicStart(flow.src))
        chain.append(segment)
        guard = 0
        while not isinstance(segment.end, NicEnd):
            end = segment.end
            out = self._flow_out[flow.flow_id].get(end.node)
            if out is None:
                raise ValueError(
                    "flow %d stops at router %d which is not on its route"
                    % (flow.flow_id, end.node)
                )
            segment = self.segments.from_start(OutputStart(end.node, out))
            chain.append(segment)
            guard += 1
            if guard > self.mesh.num_nodes * len(Port):
                raise RuntimeError("segment chain for flow %d does not terminate" % flow.flow_id)
        if segment.end.node != flow.dst:
            raise ValueError(
                "flow %d segments deliver to node %d, not destination %d"
                % (flow.flow_id, segment.end.node, flow.dst)
            )
        return chain

    def stops_for_flow(self, flow: Flow) -> List[int]:
        """Routers where packets of ``flow`` are latched and arbitrated."""
        return [
            seg.end.node
            for seg in self.flow_segments(flow)
            if isinstance(seg.end, BufferEnd)
        ]

    # ------------------------------------------------------------------
    # Cycle execution
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Advance one clock cycle."""
        cycle = self.cycle
        if self.kernel == "active":
            self._step_active(cycle)
        elif self.kernel == "event":
            self._step_event(cycle)
        else:
            self._generate(cycle)
            self._switch_traversal(cycle)
            self._nic_injection(cycle)
            self._switch_allocation(cycle)
            self._clock_accounting()
        self.counters.cycles += 1
        self.cycle += 1
        if self.sanitize:
            sanitizer.check_network(self)

    # -- active-set kernel ---------------------------------------------

    def _step_active(self, cycle: int) -> None:
        """One cycle touching only components with work to do.

        Phase order matches the legacy kernel (generate, ST, NIC
        injection, SA, clock accounting); active sets are iterated in
        sorted node order, which is the legacy iteration order too.
        """
        heap = self._inject_heap
        if heap and heap[0][0] <= cycle:
            self._generate_active(cycle, heap)
        active = self._active_routers
        routers = self.routers
        order = sorted(active) if active else ()
        for node in order:
            router = routers[node]
            if router.reservations:
                self._st_router(router, cycle)
        nics = self._active_nics
        if nics:
            idle_nics = []
            for node in sorted(nics):
                nic = self.nic_sources[node]
                self._inject_nic(nic, cycle)
                if nic.stream is None and nic.queued_packets() == 0:
                    idle_nics.append(node)
            nics.difference_update(idle_nics)
        counters = self.counters
        if active:
            # ST/NIC deliveries may have woken new routers; they must be
            # scanned and clock-accounted this cycle like the legacy
            # kernel would.
            if len(active) != len(order):
                order = sorted(active)
            idle_routers = []
            for node in order:
                router = routers[node]
                if router.sa_pending:
                    self._sa_router(router, cycle)
                if router.reservations or router.occupancy:
                    counters.clock_router_cycles += 1
                    counters.clock_port_cycles += len(router.buffers)
                else:
                    idle_routers.append(node)
            active.difference_update(idle_routers)
        counters.total_router_cycles += len(routers)

    def _generate_active(self, cycle: int, heap: List[Tuple[int, int]]) -> None:
        """Create packets for every flow whose pre-drawn cycle is due."""
        traffic = self.traffic
        while heap and heap[0][0] <= cycle:
            _due, flow_id = heapq.heappop(heap)
            flow = self.flow_by_id[flow_id]
            count = traffic.packets_at(flow, cycle)
            if count:
                nic = self.nic_sources[flow.src]
                queue = nic.queues[flow_id]
                for _ in range(count):
                    packet = Packet(
                        flow_id=flow_id,
                        src=flow.src,
                        dst=flow.dst,
                        size_flits=self.cfg.flits_per_packet,
                        create_cycle=cycle,
                        route=self._flow_route[flow_id],
                    )
                    queue.append(packet)
                    self.stats.on_create(packet)
                nic.queued += count
                self._active_nics.add(flow.src)
            nxt = traffic.next_injection_cycle(flow, cycle + 1)
            if nxt is not None:
                heapq.heappush(heap, (nxt, flow_id))

    # -- event kernel (scheduled switch traversal) ---------------------
    #
    # Why chains are safe: once a stream is granted, it can never stall.
    # A NIC streams unconditionally, and a reserved stream's reads lag
    # its feeder's contiguous sends by at least three cycles (grant
    # waits for head eligibility = arrival + 2, reads start one cycle
    # after grant), so by induction over a packet's route every flit is
    # buffered and eligible by its read cycle.  A stream whose segment
    # ends at the destination NIC also has no per-cycle observers
    # downstream — ejection cannot backpressure, and its effects on
    # shared state (credits, stats) happen only at computed cycles.
    # Such a stream is therefore scheduled as ONE finish event at its
    # tail cycle.
    #
    # Streams ending at an INTERMEDIATE stop chain too, via the same
    # induction generalized to hand-offs: the head flit travels
    # per-cycle (its buffer write is what downstream SA wakes on and
    # what keeps the hand-off buffer's occupancy non-zero for clock
    # accounting at exact cycles), then the rest of the packet defers —
    # body/tail writes are observed only by the consumer stream's
    # reads, which are themselves deferred (the consumer is granted no
    # earlier than head arrival + 2 and so reads >= 3 cycles behind).
    # Each deferring writer registers in `_chain_writers` keyed by the
    # hand-off VC; the consumer chain links back to it as `feeder`,
    # forming the chain dependency graph.  Settlement (finish events,
    # `_sync`) always advances a chain's feeder before replaying its
    # reads, so a whole producer -> consumer cascade settles as one
    # dependency-ordered replay.  If a live stream ever stalls (only
    # reachable in pathological hand-built configurations — granted
    # streams cannot stall organically), `_ev_unchain_feeders` settles
    # and reverts the deferring writers of its source VC to per-cycle
    # execution so the retries observe real buffer state.

    def _ev_init(self) -> None:
        """Resolve the event kernel's construction-time caches."""
        for node, router in self.routers.items():
            for out_port in router.config.dynamic_outputs:
                start = OutputStart(node, out_port)
                if self.segments.has_start(start):
                    router.out_segment[out_port] = self.segments.from_start(start)
                    router.out_freeq[out_port] = self.free_vcs[start]
        for segment in self.segments.segments():
            start = segment.start
            entry = (
                self.free_vcs[start],
                len(segment.routers_crossed),
                segment.hops * self._mm_per_hop,
                start.node if type(start) is OutputStart else None,
            )
            end = segment.end
            # repro-lint: ok DET001 -- lookup-only key; credit returns
            # address one end object, the dict is never iterated
            self._credit_end[id(end)] = entry
            if type(end) is BufferEnd:
                self._credit_up[(end.node, end.port)] = entry
        for node in self.nic_sources:
            segment = self.segments.from_start(NicStart(node))
            # repro-lint: ok DET001 -- lookup-only key (see _seg_target)
            t_router, t_buffer = self._seg_target[id(segment)]
            sink = (
                None if t_router is not None
                else self.nic_sinks[segment.end.node]
            )
            self._nic_ctx[node] = (
                segment,
                self.free_vcs[segment.start],
                t_router,
                t_buffer,
                len(segment.routers_crossed),
                segment.hops * self._mm_per_hop,
                segment.extra_cycles,
                sink,
                segment.end,
            )

    def _step_event(self, cycle: int) -> None:
        """One cycle of the event kernel.

        Identical phase order to the other kernels — generate, ST, NIC
        injection, SA, clock accounting — but switch allocation runs
        only for routers with a due wake event (a head became eligible,
        a credit became usable, an output or input was released; in
        between, the reference scan is a provable no-op because its
        only counting path always grants), and every stream whose
        segment ends at the destination NIC is finished by a single
        scheduled event instead of per-cycle sends.
        """
        heap = self._inject_heap
        if heap and heap[0][0] <= cycle:
            self._generate_active(cycle, heap)
        routers = self.routers
        # ST: due chain-finish events, then the live per-cycle streams.
        # Components never observe each other within a phase (each
        # stream owns its VC, segment and credit queue), so — like the
        # Dedicated active kernel — sets are iterated in set order.
        fin = self._res_finish_heap
        chains = self._chains
        while fin and fin[0][0] == cycle:
            chain = heapq.heappop(fin)[3]
            if chain.cid in chains:  # un-chained entries are skipped
                self._ev_finish_res(chain, cycle)
        st = self._st_routers
        if st:
            # repro-lint: ok ORD001 -- streams within the ST phase own
            # disjoint VCs/segments/credit queues, so visit order is
            # unobservable; pinned by the cross-kernel fuzz harness
            for node in list(st):
                router = routers[node]
                if router.live:
                    self._ev_st_router(router, cycle)
                if not router.live:
                    st.discard(node)
        # NIC injection; NICs streaming a scheduled chain sit out.
        nics = self._active_nics
        if nics:
            idle_nics = []
            # repro-lint: ok ORD001 -- each NIC injects into its own
            # segment/VC, phases never observe each other; pinned by
            # the cross-kernel fuzz harness
            for node in nics:
                nic = self.nic_sources[node]
                if type(nic.stream) in _NIC_CHAIN_TYPES:
                    idle_nics.append(node)
                    continue
                self._ev_inject_nic(nic, cycle)
                stream = nic.stream
                if type(stream) in _NIC_CHAIN_TYPES or (
                    stream is None and nic.queued == 0
                ):
                    idle_nics.append(node)
            nics.difference_update(idle_nics)
        nfin = self._nic_finish_heap
        while nfin and nfin[0][0] == cycle:
            chain = heapq.heappop(nfin)[2]
            if chain.cid in chains:  # un-chained entries are skipped
                self._ev_finish_nic(chain, cycle)
        # SA: only woken routers scan.
        sa = self._sa_heap
        while sa and sa[0][0] == cycle:
            node = heapq.heappop(sa)[1]
            router = routers[node]
            if router.sa_cycle != cycle and router.head_slots:
                router.sa_cycle = cycle
                self._ev_sa_router(router, cycle)
        # Clock accounting: identical counts to the active kernel's
        # scan, but O(1) — event-kernel active-set membership is exact
        # (see `_clock_ports`), so counting the set replaces the sweep.
        counters = self.counters
        counters.clock_router_cycles += len(self._active_routers)
        counters.clock_port_cycles += self._clock_ports
        counters.total_router_cycles += len(routers)

    def _ev_sa_router(self, router: _Router, cycle: int) -> None:
        """Switch allocation over the router's candidate heads.

        Behaviourally identical to :meth:`_sa_router` — the request
        *set* per output, the arbiter calls and the counter updates all
        match — but candidates come from the incrementally-maintained
        ``head_slots`` index instead of a sweep over every VC of every
        buffered port (request-list order differs; the arbiter grants
        by client order, so only the set matters).  The common
        single-candidate case takes a fast path with no request-dict
        churn.  A grant whose segment ends at the destination NIC
        immediately becomes a scheduled chain; other grants join the
        live per-cycle streams for exactly one send — delivering the
        head converts them to mid-chains (see :class:`_MidChain`).
        """
        node = router.node
        flow_out = self._flow_out
        input_streaming = router.input_streaming
        head_slots = router.head_slots
        counters = self.counters
        reservations = router.reservations
        if len(head_slots) == 1:
            (in_port, vc_id), vc = next(iter(head_slots.items()))
            if input_streaming[in_port] or vc._eligible[0] > cycle:
                return
            out_port = flow_out[vc._fifo[0].packet.flow_id][node]
            if out_port in reservations:
                return
            free_queue = router.out_freeq.get(out_port)
            if free_queue is None or not free_queue.available(cycle):
                return
            counters.sa_requests += 1
            winner = router.arbiters[out_port].grant_sole((in_port, vc_id))
            counters.sa_grants += 1
            self._ev_grant(router, out_port, winner, free_queue, cycle)
            return
        by_out: Dict[Port, List[Tuple[Port, int]]] = {}
        for (in_port, vc_id), vc in head_slots.items():
            if input_streaming[in_port]:
                continue
            if vc._eligible[0] > cycle:
                continue
            wanted = flow_out[vc._fifo[0].packet.flow_id][node]
            by_out.setdefault(wanted, []).append((in_port, vc_id))
        if not by_out:
            return
        for out_port in router.config.dynamic_outputs:
            candidates = by_out.get(out_port)
            if not candidates or out_port in reservations:
                continue
            free_queue = router.out_freeq.get(out_port)
            if free_queue is None or not free_queue.available(cycle):
                continue
            requests = [
                req for req in candidates if not input_streaming[req[0]]
            ]
            if not requests:
                continue
            counters.sa_requests += len(requests)
            if len(requests) == 1:
                winner = router.arbiters[out_port].grant_sole(requests[0])
            else:
                winner = router.arbiters[out_port].grant(requests)
                if winner is None:
                    continue
            counters.sa_grants += 1
            self._ev_grant(router, out_port, winner, free_queue, cycle)

    def _ev_grant(
        self,
        router: _Router,
        out_port: Port,
        winner: Tuple[Port, int],
        free_queue: FreeVcQueue,
        cycle: int,
    ) -> None:
        """Install a granted reservation and schedule its stream."""
        in_port, vc_id = winner
        vc = router.buffers[in_port].vc(vc_id)
        # A granted input is invisible to SA (``input_streaming``)
        # until its stream finishes, and by then the head is long
        # read out — drop its candidate entry now so later scans
        # never iterate it.
        del router.head_slots[winner]
        segment = router.out_segment[out_port]
        res = _Reservation(
            out_port=out_port,
            in_port=in_port,
            vc_id=vc_id,
            packet=vc.front().packet,
            segment=segment,
            assigned_vc=free_queue.acquire(cycle),
            flits_left=vc.front().packet.size_flits,
            next_send_cycle=cycle + 1,
            vc=vc,
            ins=next(self._res_seq),
        )
        router.reservations[out_port] = res
        router.input_streaming[in_port] = True
        # repro-lint: ok DET001 -- lookup-only key (see _seg_target)
        t_router, t_buffer = self._seg_target[id(segment)]
        if t_router is None:
            # Final segment: deterministic from the grant (see the
            # section note) — one finish event runs the stream.
            chain = _ResChain(self, router, res, cycle + 1)
            self._chains[chain.cid] = chain
            heapq.heappush(
                self._res_finish_heap,
                (chain.end_cycle, router.node, res.ins, chain),
            )
        else:
            res.ctx = (
                t_router,
                t_buffer,
                len(segment.routers_crossed),
                segment.hops * self._mm_per_hop,
                segment.extra_cycles,
                segment.end,
            )
            router.live.append(res)
            self._st_routers.add(router.node)

    def _ev_st_router(self, router: _Router, cycle: int) -> None:
        """ST stage for one router's live streams (event kernel).

        Mirrors :meth:`_st_router` flit for flit for streams into a
        buffered stop (final streams never get here — they are chained
        at grant), with delivery inlined through the reservation's
        cached context and a tail send waking this router's SA.  A
        non-final stream is live only for its head send: delivering the
        head converts it to a :class:`_MidChain` and the rest of the
        packet settles as deferred events.
        """
        counters = self.counters
        sa_heap = self._sa_heap
        finished = None
        for res in router.live:
            if res.next_send_cycle > cycle:
                continue
            vc = res.vc
            fifo = vc._fifo
            if (
                not fifo
                or fifo[0].packet is not res.packet
                or vc._eligible[0] > cycle
            ):
                # Virtual cut-through streams packets contiguously, so
                # a live stream only stalls in pathological
                # configurations.  If the missing flits are held by
                # deferring feeder chains, settle them and revert them
                # to per-cycle execution so the retries observe real
                # buffer state; then idle the slot rather than corrupt
                # the stream.
                self._ev_unchain_feeders(
                    router.node, res.in_port, res.vc_id, cycle
                )
                continue
            flit = fifo[0]
            # Inline VirtualChannel.read()/write() — this is the
            # kernel's hottest per-cycle path; the semantic guards
            # (overflow, busy-VC) are preserved.
            vc._eligible.popleft()
            fifo.popleft()
            is_head = flit.is_head
            is_tail = flit.is_tail
            if is_tail:
                vc.busy = False
            router.occupancy -= 1
            counters.buffer_reads += 1
            assigned = res.assigned_vc
            flit.vc = assigned
            t_router, t_buffer, crossed, hop_mm, extra, end = res.ctx
            arrival = cycle + extra
            counters.crossbar_traversals += crossed
            counters.link_flit_mm += hop_mm
            counters.pipeline_latches += 1
            t_vc = t_buffer.vcs[assigned]
            t_fifo = t_vc._fifo
            if len(t_fifo) >= t_vc.depth:
                raise OverflowError(
                    "VC %d overflow: virtual cut-through guarantees violated"
                    % t_vc.vc_id
                )
            if is_head:
                if t_vc.busy:
                    raise RuntimeError(
                        "head flit written to busy VC %d" % t_vc.vc_id
                    )
                t_vc.busy = True
                t_router.head_slots[(end.port, assigned)] = t_vc
                heapq.heappush(sa_heap, (arrival + 2, t_router.node))
            t_fifo.append(flit)
            t_vc._eligible.append(arrival + 2)
            t_router.occupancy += 1
            counters.buffer_writes += 1
            self._ev_activate(t_router)
            res.flits_left -= 1
            res.next_send_cycle = cycle + 1
            if is_tail:
                self._ev_credit_up(router.node, res.in_port, res.vc_id, cycle)
                router.input_streaming[res.in_port] = False
                del router.reservations[res.out_port]
                if router.head_slots:
                    # The release wake only matters to heads already
                    # waiting: a head written later this cycle becomes
                    # eligible at arrival + 2 and wakes SA itself.
                    heapq.heappush(sa_heap, (cycle, router.node))
                if finished is None:
                    finished = [res]
                else:
                    finished.append(res)
            elif is_head:
                # Head delivered; the rest of the packet is
                # deterministic (generalized read-lag induction), so it
                # defers into the chain dependency graph and replays at
                # settlement instead of per-cycle sends.  Un-chained
                # streams re-enter this loop mid-packet (never at a
                # head) and stay per-cycle to their tail.
                chain = _MidChain(self, router, res, cycle + 1)
                self._chains[chain.cid] = chain
                heapq.heappush(
                    self._res_finish_heap,
                    (chain.end_cycle, router.node, res.ins, chain),
                )
                if finished is None:
                    finished = [res]
                else:
                    finished.append(res)
        if finished:
            if len(finished) == len(router.live):
                router.live.clear()
            else:
                for res in finished:
                    router.live.remove(res)
            if not router.reservations and not router.occupancy:
                self._ev_deactivate(router)

    def _ev_activate(self, router: _Router) -> None:
        """Add a router to the exact active set (see ``_clock_ports``).

        Every event-kernel write site must transition membership through
        here (or :meth:`_ev_deactivate`) — O(1) clock accounting is
        exact only while the cached port total tracks the set.
        """
        active = self._active_routers
        if router.node not in active:
            active.add(router.node)
            self._clock_ports += len(router.buffers)

    def _ev_deactivate(self, router: _Router) -> None:
        """Drop a drained router from the exact active set."""
        active = self._active_routers
        if router.node in active:
            active.remove(router.node)
            self._clock_ports -= len(router.buffers)

    def _ev_inject_nic(self, nic: _NicSource, cycle: int) -> None:
        """NIC injection for the event kernel.

        Mirrors :meth:`_inject_nic`, but delivers through the cached
        per-NIC context and starts a fully-bypassed packet as a single
        scheduled chain instead of a per-cycle stream.
        """
        stream = nic.stream
        ctx = self._nic_ctx[nic.node]
        if stream is not None:
            packet, flits, vc_id = stream
            flit = flits.pop(0)
            flit.vc = vc_id
            self._ev_nic_deliver(flit, ctx, cycle)
            if not flits:
                nic.stream = None
            return
        if nic.queued == 0:
            return
        free_queue = ctx[1]
        if not free_queue.available(cycle):
            return
        requesters = [fid for fid, queue in nic.queues.items() if queue]
        if len(requesters) == 1:
            winner = nic.rr.grant_sole(requesters[0])
        else:
            winner = nic.rr.grant(requesters)
            if winner is None:
                return
        packet = nic.queues[winner].popleft()
        nic.queued -= 1
        vc_id = free_queue.acquire(cycle)
        packet.inject_cycle = cycle
        flits = packet.flits()
        if ctx[2] is None:
            # Fully bypassed source-to-destination chain: one event at
            # the tail cycle performs the whole traversal.
            chain = _NicChain(self, nic.node, flits, vc_id, ctx[0], cycle)
            nic.stream = chain
            self._chains[chain.cid] = chain
            heapq.heappush(
                self._nic_finish_heap, (chain.end_cycle, nic.node, chain)
            )
            return
        flit = flits.pop(0)
        flit.vc = vc_id
        self._ev_nic_deliver(flit, ctx, cycle)
        if flits:
            # Head delivered to a buffered first stop; the rest of the
            # stream is deterministic (a NIC streams unconditionally),
            # so it defers into the chain dependency graph as the
            # writer of the hand-off VC.
            chain = _NicMidChain(
                self, nic.node, packet, flits, vc_id, ctx, cycle + 1
            )
            nic.stream = chain
            self._chains[chain.cid] = chain
            heapq.heappush(
                self._nic_finish_heap, (chain.end_cycle, nic.node, chain)
            )

    def _ev_nic_deliver(self, flit: Flit, ctx: tuple, cycle: int) -> None:
        """Deliver one NIC flit through the cached injection context."""
        _seg, _fq, t_router, t_buffer, crossed, hop_mm, extra, sink, end = ctx
        arrival = cycle + extra
        counters = self.counters
        counters.crossbar_traversals += crossed
        counters.link_flit_mm += hop_mm
        counters.pipeline_latches += 1
        if t_router is not None:
            # Inline VirtualChannel.write(); guards preserved.
            t_vc = t_buffer.vcs[flit.vc]
            t_fifo = t_vc._fifo
            if len(t_fifo) >= t_vc.depth:
                raise OverflowError(
                    "VC %d overflow: virtual cut-through guarantees violated"
                    % t_vc.vc_id
                )
            if flit.is_head:
                if t_vc.busy:
                    raise RuntimeError(
                        "head flit written to busy VC %d" % t_vc.vc_id
                    )
                t_vc.busy = True
                t_router.head_slots[(end.port, flit.vc)] = t_vc
                heapq.heappush(self._sa_heap, (arrival + 2, t_router.node))
            t_fifo.append(flit)
            t_vc._eligible.append(arrival + 2)
            t_router.occupancy += 1
            counters.buffer_writes += 1
            self._ev_activate(t_router)
        else:
            sink.flits_received += 1
            packet = flit.packet
            if flit.is_head:
                packet.head_arrive_cycle = arrival
            if flit.is_tail:
                packet.tail_arrive_cycle = arrival
                sink.packets_received += 1
                self.stats.on_deliver(packet)
                self._ev_credit_end(end, flit.vc, arrival)

    def _ev_finish_res(self, chain, cycle: int) -> None:
        """Tail event of a chained reservation (final or mid-chain):
        replay the unsettled sends, then tear the reservation down
        exactly as the per-cycle tail send would (upstream credit, SA
        wake)."""
        res = chain.res
        router = chain.router
        chain.advance(cycle)
        del self._chains[chain.cid]
        if type(chain) is _MidChain:
            writers = self._chain_writers
            if writers.get(chain.writer_key) is chain:
                del writers[chain.writer_key]
        self._ev_credit_up(router.node, res.in_port, res.vc_id, cycle)
        router.input_streaming[res.in_port] = False
        del router.reservations[res.out_port]
        if router.head_slots:
            # Only already-waiting heads can use this release wake; a
            # head written later this cycle wakes SA itself.
            heapq.heappush(self._sa_heap, (cycle, router.node))
        if not router.reservations and not router.occupancy:
            self._ev_deactivate(router)

    def _ev_finish_nic(self, chain, cycle: int) -> None:
        """Tail event of a NIC chain (fully bypassed or mid-chain):
        replay the unsettled sends and free the injection port for the
        next cycle."""
        chain.advance(cycle)
        del self._chains[chain.cid]
        if type(chain) is _NicMidChain:
            writers = self._chain_writers
            if writers.get(chain.writer_key) is chain:
                del writers[chain.writer_key]
        nic = self.nic_sources[chain.node]
        nic.stream = None
        if nic.queued:
            self._active_nics.add(chain.node)

    def _ev_unchain_feeders(
        self, node: int, in_port: Port, vc_id: int, cycle: int
    ) -> bool:
        """Un-chain the writer of a hand-off VC after a consumer stall.

        A live stream that stalls reading ``(node, in_port, vc_id)``
        (unreachable through the network's own mechanics — see the
        section note — but possible in hand-built configurations) must
        not keep racing a deferring writer: the writer's chain is
        settled through ``cycle`` and its remainder reverted to
        per-cycle execution, recursively un-chaining the writer's own
        feeders first so its settled reads observe settled writes.
        Returns True if a writer chain was reverted.
        """
        chain = self._chain_writers.get((node, in_port, vc_id))
        if chain is None or chain.cid not in self._chains:
            return False
        self._ev_unchain(chain, cycle)
        return True

    def _ev_unchain(self, chain, cycle: int) -> None:
        """Settle ``chain`` and revert it to live per-cycle execution.

        ``cycle`` is the tick in which the stall was observed (the tick
        currently — or about to be — executed).  A mid-chain's sends
        belong to the ST phase, the same phase as the stall check, so
        it settles *through* ``cycle`` (the writer ran earlier in the
        scan); a NIC chain's sends belong to the injection phase, which
        runs after ST in the same tick, so it settles only past cycles
        and this tick's injection phase delivers the due flit from the
        reverted live tuple.  The dead chain's finish-heap entry is
        skipped at pop via the ``_chains`` membership check.
        """
        if type(chain) is _MidChain:
            feeder = chain.feeder
            if feeder is not None and feeder.cid in self._chains:
                self._ev_unchain(feeder, cycle)
            chain.advance(cycle)
        else:
            chain.advance(cycle - 1)
        del self._chains[chain.cid]
        writers = self._chain_writers
        if writers.get(chain.writer_key) is chain:
            del writers[chain.writer_key]
        if type(chain) is _MidChain:
            # The chain's reservation is still held, so its router is
            # necessarily a member of the exact active set already.
            chain.router.live.append(chain.res)
            self._st_routers.add(chain.router.node)
        else:
            nic = self.nic_sources[chain.node]
            nic.stream = (chain.packet, chain.flits[chain.idx:], chain.vc_id)
            self._active_nics.add(chain.node)
        # Downstream consumers may still hold this chain as ``feeder``;
        # exhaust it so their settlement never replays flits the live
        # path now sends per-cycle.
        chain.next_send = chain.end_cycle + 1

    def _ev_credit_up(
        self, node: int, in_port: Port, vc_id: int, freed_cycle: int
    ) -> None:
        """Return the credit for a read-out tail flit to the upstream
        segment start, waking its switch allocation when usable.

        NIC injection queues need no wake: a NIC with queued packets
        stays in the active set and retries every cycle, exactly like
        the active kernel.
        """
        queue, crossed, hop_mm, wake = self._credit_up[(node, in_port)]
        usable = freed_cycle + 1 + self._credit_latency
        queue.release(vc_id, usable)
        counters = self.counters
        counters.credit_events += 1
        counters.credit_crossbar_traversals += crossed
        counters.credit_mm += hop_mm
        if wake is not None:
            heapq.heappush(self._sa_heap, (usable, wake))

    def _ev_credit_end(self, end, vc_id: int, freed_cycle: int) -> None:
        """Return the credit for a packet ejected at ``end`` (a NIC)."""
        # repro-lint: ok DET001 -- lookup-only key (see _credit_end)
        queue, crossed, hop_mm, wake = self._credit_end[id(end)]
        usable = freed_cycle + 1 + self._credit_latency
        queue.release(vc_id, usable)
        counters = self.counters
        counters.credit_events += 1
        counters.credit_crossbar_traversals += crossed
        counters.credit_mm += hop_mm
        if wake is not None:
            heapq.heappush(self._sa_heap, (usable, wake))

    def _sync(self) -> None:
        """Settle in-flight chains up to the last executed cycle.

        Chain traversals attribute their per-flit counter and stats
        updates when their finish event runs; a counter snapshot taken
        mid-chain must first replay the sends that a per-cycle kernel
        would already have performed.  Settlement is feeder-ordered:
        chain ids ascend from producers to their consumers (a consumer
        is granted only after its feeder's head went out), and each
        chain additionally advances its ``feeder`` link first, so a
        mid-cascade snapshot replays every hand-off's writes before the
        reads that consume them.  Called around the measurement-window
        snapshots of :meth:`run` and at the end of :meth:`run_cycles`;
        a no-op for the other kernels.
        """
        if self.kernel == "event" and self._chains:
            through = self.cycle - 1
            for cid in sorted(self._chains):
                self._chains[cid].advance(through)
        if self.sanitize:
            sanitizer.check_counters(self, self._mm_per_hop)
            sanitizer.check_chain_graph(self)

    # -- legacy kernel (full scans) ------------------------------------

    def _generate(self, cycle: int) -> None:
        for nic in self.nic_sources.values():
            for flow in nic.flows:
                for _ in range(self.traffic.packets_at(flow, cycle)):
                    packet = Packet(
                        flow_id=flow.flow_id,
                        src=flow.src,
                        dst=flow.dst,
                        size_flits=self.cfg.flits_per_packet,
                        create_cycle=cycle,
                        route=self._flow_route[flow.flow_id],
                    )
                    nic.queues[flow.flow_id].append(packet)
                    nic.queued += 1
                    self.stats.on_create(packet)

    def _switch_traversal(self, cycle: int) -> None:
        """ST stage: every active reservation sends one flit."""
        for router in self.routers.values():
            if router.reservations:
                self._st_router(router, cycle)

    def _nic_injection(self, cycle: int) -> None:
        for nic in self.nic_sources.values():
            self._inject_nic(nic, cycle)

    def _switch_allocation(self, cycle: int) -> None:
        """SA stage: per-packet output-port arbitration at stop routers."""
        for router in self.routers.values():
            if router.buffers:
                self._sa_router_reference(router, cycle)

    # -- per-component stages (shared by both kernels) -----------------

    def _st_router(self, router: _Router, cycle: int) -> None:
        counters = self.counters
        finished: List[Port] = []
        for out_port, res in router.reservations.items():
            if res.next_send_cycle > cycle:
                continue
            vc = res.vc
            flit = vc.front()
            if (
                flit is None
                or flit.packet is not res.packet
                or not vc.front_eligible(cycle)
            ):
                # Virtual cut-through streams packets contiguously, so
                # this only triggers in pathological configurations;
                # idle the slot rather than corrupt the stream.
                continue
            vc.read()
            router.occupancy -= 1
            if flit.is_head:
                router.sa_pending -= 1
            counters.buffer_reads += 1
            flit.vc = res.assigned_vc
            self._deliver(flit, res.segment, cycle)
            res.flits_left -= 1
            res.next_send_cycle = cycle + 1
            if flit.is_tail:
                self._return_credit(
                    BufferEnd(router.node, res.in_port), res.vc_id, cycle
                )
                router.input_streaming[res.in_port] = False
                finished.append(out_port)
        for out_port in finished:
            del router.reservations[out_port]

    def _inject_nic(self, nic: _NicSource, cycle: int) -> None:
        if nic.stream is not None:
            self._nic_send_next(nic, cycle)
            return
        if nic.queued_packets() == 0:
            return
        start = NicStart(nic.node)
        free_queue = self.free_vcs[start]
        if not free_queue.available(cycle):
            return
        requesters = [
            fid for fid, queue in nic.queues.items() if queue
        ]
        winner = nic.rr.grant(requesters)
        if winner is None:
            return
        packet = nic.queues[winner].popleft()
        nic.queued -= 1
        vc_id = free_queue.acquire(cycle)
        packet.inject_cycle = cycle
        nic.stream = (packet, packet.flits(), vc_id)
        self._nic_send_next(nic, cycle)

    def _nic_send_next(self, nic: _NicSource, cycle: int) -> None:
        packet, flits, vc_id = nic.stream
        flit = flits.pop(0)
        flit.vc = vc_id
        segment = self.segments.from_start(NicStart(nic.node))
        self._deliver(flit, segment, cycle)
        if not flits:
            nic.stream = None

    def _sa_router_reference(self, router: _Router, cycle: int) -> None:
        """The seed simulator's SA scan: one buffer sweep per output port.

        Kept verbatim as the legacy kernel's implementation and as the
        behavioural reference for the single-sweep :meth:`_sa_router`
        below (the equivalence tests compare the two).
        """
        for out_port in router.config.dynamic_outputs:
            if out_port in router.reservations:
                continue
            start = OutputStart(router.node, out_port)
            free_queue = self.free_vcs.get(start)
            if free_queue is None or not free_queue.available(cycle):
                continue
            requests = []
            for in_port, buffer in router.buffers.items():
                if router.input_streaming[in_port]:
                    continue
                for vc in buffer.vcs:
                    flit = vc.front()
                    if flit is None or not flit.is_head:
                        continue
                    if not vc.front_eligible(cycle):
                        continue
                    wanted = self._flow_out[flit.packet.flow_id][router.node]
                    if wanted is out_port:
                        requests.append((in_port, vc.vc_id))
            if not requests:
                continue
            self.counters.sa_requests += len(requests)
            winner = router.arbiters[out_port].grant(requests)
            if winner is None:
                continue
            self.counters.sa_grants += 1
            in_port, vc_id = winner
            vc = router.buffers[in_port].vc(vc_id)
            assigned_vc = free_queue.acquire(cycle)
            router.reservations[out_port] = _Reservation(
                out_port=out_port,
                in_port=in_port,
                vc_id=vc_id,
                packet=vc.front().packet,
                segment=self.segments.from_start(start),
                assigned_vc=assigned_vc,
                flits_left=vc.front().packet.size_flits,
                next_send_cycle=cycle + 1,
                vc=vc,
            )
            router.input_streaming[in_port] = True

    def _sa_router(self, router: _Router, cycle: int) -> None:
        # One pass over the buffers collects every eligible head and the
        # output it wants; outputs are then served in port order exactly
        # as the per-output scan did.  A grant marks its input streaming,
        # so later outputs re-check ``input_streaming`` before counting a
        # request from that input — matching the sequential scan, where a
        # just-granted input is invisible to subsequent outputs.
        node = router.node
        flow_out = self._flow_out
        by_out: Dict[Port, List[Tuple[Port, int]]] = {}
        for in_port, buffer in router.buffers.items():
            if router.input_streaming[in_port]:
                continue
            for vc in buffer.vcs:
                flit = vc.front()
                if flit is None or not flit.is_head:
                    continue
                if not vc.front_eligible(cycle):
                    continue
                wanted = flow_out[flit.packet.flow_id][node]
                by_out.setdefault(wanted, []).append((in_port, vc.vc_id))
        if not by_out:
            return
        counters = self.counters
        reservations = router.reservations
        input_streaming = router.input_streaming
        for out_port in router.config.dynamic_outputs:
            candidates = by_out.get(out_port)
            if not candidates or out_port in reservations:
                continue
            start = OutputStart(node, out_port)
            free_queue = self.free_vcs.get(start)
            if free_queue is None or not free_queue.available(cycle):
                continue
            requests = [
                req for req in candidates if not input_streaming[req[0]]
            ]
            if not requests:
                continue
            counters.sa_requests += len(requests)
            winner = router.arbiters[out_port].grant(requests)
            if winner is None:
                continue
            counters.sa_grants += 1
            in_port, vc_id = winner
            vc = router.buffers[in_port].vc(vc_id)
            assigned_vc = free_queue.acquire(cycle)
            reservations[out_port] = _Reservation(
                out_port=out_port,
                in_port=in_port,
                vc_id=vc_id,
                packet=vc.front().packet,
                segment=self.segments.from_start(start),
                assigned_vc=assigned_vc,
                flits_left=vc.front().packet.size_flits,
                next_send_cycle=cycle + 1,
                vc=vc,
            )
            input_streaming[in_port] = True

    def _deliver(self, flit: Flit, segment: Segment, send_cycle: int) -> None:
        """Move a flit across a segment; record arrival and power events."""
        arrival = send_cycle + segment.extra_cycles
        counters = self.counters
        counters.crossbar_traversals += len(segment.routers_crossed)
        counters.link_flit_mm += segment.hops * self._mm_per_hop
        counters.pipeline_latches += 1
        # repro-lint: ok DET001 -- lookup-only key (see _seg_target)
        router, buffer = self._seg_target[id(segment)]
        if router is not None:
            if buffer is None:
                raise RuntimeError(
                    "segment %r delivers to un-buffered port" % (segment,)
                )
            buffer.vc(flit.vc).write(flit, arrival)
            router.occupancy += 1
            if flit.is_head:
                router.sa_pending += 1
            counters.buffer_writes += 1
            self._active_routers.add(router.node)
        else:
            end = segment.end
            sink = self.nic_sinks[end.node]
            sink.flits_received += 1
            packet = flit.packet
            if flit.is_head:
                packet.head_arrive_cycle = arrival
            if flit.is_tail:
                packet.tail_arrive_cycle = arrival
                sink.packets_received += 1
                self.stats.on_deliver(packet)
                self._return_credit(end, flit.vc, arrival)

    def _return_credit(self, end, vc_id: int, freed_cycle: int) -> None:
        """Send a credit back along the reverse credit mesh."""
        segment = self.segments.ending_at(end)
        usable = freed_cycle + 1 + self.cfg.credit_latency
        self.free_vcs[segment.start].release(vc_id, usable)
        counters = self.counters
        counters.credit_events += 1
        counters.credit_crossbar_traversals += len(segment.routers_crossed)
        counters.credit_mm += segment.hops * self._mm_per_hop

    def _clock_accounting(self) -> None:
        for router in self.routers.values():
            self.counters.total_router_cycles += 1
            if router.active:
                self.counters.clock_router_cycles += 1
                self.counters.clock_port_cycles += len(router.buffers)

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------

    def run(
        self,
        warmup_cycles: int = 1000,
        measure_cycles: int = 20000,
        drain_limit: int = 100000,
    ) -> SimResult:
        """Warm up, measure, then drain measured packets.

        Traffic keeps flowing during the drain so contention stays
        representative; statistics and power counters cover only packets
        created (events occurring) in the measurement window.
        """
        for _ in range(warmup_cycles):
            self.step()
        self._sync()
        baseline = self.counters.snapshot()
        self.stats.measuring = True
        for _ in range(measure_cycles):
            self.step()
        self._sync()
        self.stats.measuring = False
        window_counters = self.counters.delta(baseline)
        drained = True
        drain_cycles = 0
        while self.stats.outstanding_measured > 0:
            if drain_cycles >= drain_limit:
                drained = False
                break
            self.step()
            drain_cycles += 1
        self._sync()
        return SimResult(
            summary=self.stats.summary(),
            per_flow=self.stats.per_flow_summary(),
            counters=window_counters,
            measured_cycles=measure_cycles,
            total_cycles=self.cycle,
            drained=drained,
            undelivered_measured=self.stats.outstanding_measured,
            per_tenant=self.stats.per_tenant_summary(),
            node_delivered_flits=dict(self.stats.node_flits),
        )

    def run_cycles(self, cycles: int) -> None:
        """Advance a fixed number of cycles (used by scripted tests)."""
        for _ in range(cycles):
            self.step()
        self._sync()
