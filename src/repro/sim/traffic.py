"""Traffic generation.

The paper drives each design with synthetic traffic "modeling a uniform
random injection rate to meet the specified bandwidth for each flow" (§VI).
``BernoulliTraffic`` implements that; ``ScriptedTraffic`` injects packets at
exact cycles and is used by the Fig 7 reproduction and by unit tests.

Traffic models expose two queries:

* :meth:`TrafficModel.packets_at` — how many packets does ``flow`` inject
  at ``cycle``?  This is the classic per-cycle interface.
* :meth:`TrafficModel.next_injection_cycle` — the earliest cycle at or
  after ``from_cycle`` at which the flow *may* inject.  The active-set
  simulation kernel uses this to skip idle cycles entirely instead of
  polling every flow every cycle.  The base-class default returns
  ``from_cycle`` ("poll me every cycle"), which is always correct.

``BernoulliTraffic`` pre-draws each flow's next injection cycle by
sampling the geometric inter-arrival distribution.  Its default
``mode="predraw"`` samples the geometric gap by counting Bernoulli trials
on the same per-flow RNG stream the seed kernel consumed one-draw-per-cycle,
so the injection schedule is bit-identical to the historical per-cycle
draws.  ``mode="geometric"`` uses inverse-CDF sampling (one draw per
packet — fastest, distribution-equivalent but a different schedule) and
``mode="legacy"`` keeps the original draw-on-every-``packets_at``-call
behaviour for regression checks.
"""

from __future__ import annotations

import collections
import math
import random
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config import NocConfig
from repro.sim.flow import Flow

#: Injection-schedule sampling strategies for ``BernoulliTraffic``.
BERNOULLI_MODES = ("predraw", "geometric", "legacy")


class TrafficModel:
    """Interface: how many packets does ``flow`` inject at ``cycle``?

    Implementations model the §VI workloads; the optional
    :meth:`next_injection_cycle` query additionally lets the active-set
    kernels skip idle cycles (see ``docs/kernel.md``).
    """

    def packets_at(self, flow: Flow, cycle: int) -> int:
        raise NotImplementedError

    def next_injection_cycle(self, flow: Flow, from_cycle: int) -> Optional[int]:
        """Earliest cycle >= ``from_cycle`` at which ``flow`` may inject.

        Returns ``None`` if the flow will never inject again.  The default
        conservatively requests a poll on every cycle.
        """
        return from_cycle


class BernoulliTraffic(TrafficModel):
    """Per-cycle Bernoulli packet injection at each flow's bandwidth (§VI:
    "a uniform random injection rate to meet the specified bandwidth").

    Each flow gets an independent deterministic RNG stream (derived from
    the base seed and the flow id) so results are reproducible and
    insensitive to flow iteration order.

    Args:
        cfg: Network configuration (converts bandwidth to packets/cycle).
        flows: Flow set to drive.
        seed: Base RNG seed.
        mode: One of :data:`BERNOULLI_MODES` — see the module docstring.
        clamp: Clamp per-flow rates above 1 packet/cycle to exactly 1.0
            (a saturated injection port) instead of raising.  Clamped
            flows are recorded in :attr:`clamped_rates`.
    """

    def __init__(
        self,
        cfg: NocConfig,
        flows: Sequence[Flow],
        seed: int = 1,
        mode: str = "predraw",
        clamp: bool = False,
    ):
        if mode not in BERNOULLI_MODES:
            raise ValueError(
                "unknown Bernoulli mode %r (have %s)"
                % (mode, ", ".join(BERNOULLI_MODES))
            )
        self.mode = mode
        self._rates: Dict[int, float] = {}
        self._rngs: Dict[int, random.Random] = {}
        #: flow_id -> unclamped rate, for flows clamped to 1 packet/cycle.
        self.clamped_rates: Dict[int, float] = {}
        #: flow_id -> pre-drawn next injection cycle (predraw/geometric).
        self._next: Dict[int, Optional[int]] = {}
        for flow in flows:
            rate = cfg.flow_rate_packets_per_cycle(flow.bandwidth_bps)
            if rate > 1.0:
                if not clamp:
                    raise ValueError(
                        "flow %d needs %.2f packets/cycle; exceeds one "
                        "injection port" % (flow.flow_id, rate)
                    )
                self.clamped_rates[flow.flow_id] = rate
                rate = 1.0
            self._rates[flow.flow_id] = rate
            self._rngs[flow.flow_id] = random.Random((seed << 20) ^ flow.flow_id)

    def rate(self, flow_id: int) -> float:
        return self._rates[flow_id]

    # -- schedule sampling ---------------------------------------------

    def _draw_gap(self, flow_id: int) -> Optional[int]:
        """Sample the geometric gap to the next injection (in cycles)."""
        rate = self._rates[flow_id]
        if rate <= 0.0:
            return None
        if rate >= 1.0:
            return 1
        rng = self._rngs[flow_id]
        if self.mode == "geometric":
            # Inverse-CDF: one draw per packet.  P(gap = k) = (1-p)^(k-1) p.
            u = rng.random()
            return 1 + int(math.log(1.0 - u) / math.log(1.0 - rate))
        # predraw: count Bernoulli trials so the stream (and therefore the
        # schedule) is bit-identical to historical one-draw-per-cycle.
        gap = 1
        rng_random = rng.random
        while rng_random() >= rate:
            gap += 1
        return gap

    def _peek_next(self, flow_id: int) -> Optional[int]:
        """The pre-drawn next injection cycle for ``flow_id``."""
        if flow_id not in self._next:
            gap = self._draw_gap(flow_id)
            # Cycle numbering starts at 0: a gap of 1 from "before cycle 0"
            # means the first injection lands on cycle 0 (matching draw #0
            # of the per-cycle stream).
            self._next[flow_id] = None if gap is None else gap - 1
        return self._next[flow_id]

    def packets_at(self, flow: Flow, cycle: int) -> int:
        rate = self._rates[flow.flow_id]
        if rate <= 0.0:
            return 0
        if self.mode == "legacy":
            return 1 if self._rngs[flow.flow_id].random() < rate else 0
        nxt = self._peek_next(flow.flow_id)
        if nxt is None or nxt > cycle:
            return 0
        # Catch up if the caller skipped past pre-drawn injections.
        while nxt is not None and nxt < cycle:
            gap = self._draw_gap(flow.flow_id)
            nxt = None if gap is None else nxt + gap
        self._next[flow.flow_id] = nxt
        if nxt != cycle:
            return 0
        gap = self._draw_gap(flow.flow_id)
        self._next[flow.flow_id] = None if gap is None else nxt + gap
        return 1

    def next_injection_cycle(self, flow: Flow, from_cycle: int) -> Optional[int]:
        if self.mode == "legacy":
            return from_cycle if self._rates[flow.flow_id] > 0.0 else None
        nxt = self._peek_next(flow.flow_id)
        while nxt is not None and nxt < from_cycle:
            gap = self._draw_gap(flow.flow_id)
            nxt = None if gap is None else nxt + gap
        self._next[flow.flow_id] = nxt
        return nxt


class ScriptedTraffic(TrafficModel):
    """Injects packets at exact (cycle, flow_id) points (drives the Fig 7
    four-flow scenario and the unit tests).

    Schedule entries are consumed as they are injected, so
    :meth:`remaining` reports how many scripted packets are still pending
    (it used to report the initial total forever).
    """

    def __init__(self, schedule: Iterable[Tuple[int, int]]):
        counts: Dict[int, Dict[int, int]] = {}
        for cycle, flow_id in schedule:
            per_flow = counts.setdefault(flow_id, {})
            per_flow[cycle] = per_flow.get(cycle, 0) + 1
        #: flow_id -> deque of (cycle, count), sorted by cycle.
        self._by_flow: Dict[int, Deque[Tuple[int, int]]] = {
            flow_id: collections.deque(sorted(per_flow.items()))
            for flow_id, per_flow in counts.items()
        }

    def packets_at(self, flow: Flow, cycle: int) -> int:
        queue = self._by_flow.get(flow.flow_id)
        if not queue:
            return 0
        # Entries strictly in the past can never fire (kernel cycles are
        # monotonic); drop them so remaining() converges.
        while queue and queue[0][0] < cycle:
            queue.popleft()
        if queue and queue[0][0] == cycle:
            return queue.popleft()[1]
        return 0

    def next_injection_cycle(self, flow: Flow, from_cycle: int) -> Optional[int]:
        queue = self._by_flow.get(flow.flow_id)
        if not queue:
            return None
        while queue and queue[0][0] < from_cycle:
            queue.popleft()
        return queue[0][0] if queue else None

    def remaining(self) -> int:
        return sum(
            count for queue in self._by_flow.values() for _cycle, count in queue
        )


class RateScaledTraffic(TrafficModel):
    """Wraps Bernoulli injection, scaling all bandwidths by a load factor
    (the §VI saturation axis: "SMART is limited by the available link
    bandwidth in a mesh ... while Dedicated has no bandwidth limitation").

    Used by load-sweep ablations to push designs toward saturation.  A
    flow whose scaled rate exceeds 1 packet/cycle is clamped to exactly
    1.0 — a saturated injection port — instead of raising, so sweeps can
    run past the saturation knee; clamped flows are recorded in
    :attr:`clamped_rates` (flow_id -> requested, unclamped rate).
    """

    def __init__(
        self,
        cfg: NocConfig,
        flows: Sequence[Flow],
        scale: float,
        seed: int = 1,
        mode: str = "predraw",
    ):
        if scale < 0:
            raise ValueError("load scale must be non-negative")
        self.scale = scale
        scaled: List[Flow] = [
            Flow(
                flow_id=f.flow_id,
                src=f.src,
                dst=f.dst,
                bandwidth_bps=f.bandwidth_bps * scale,
                route=f.route,
                name=f.name,
            )
            for f in flows
        ]
        self._inner = BernoulliTraffic(cfg, scaled, seed=seed, mode=mode, clamp=True)

    @property
    def clamped_rates(self) -> Dict[int, float]:
        """flow_id -> requested rate, for flows clamped at 1 packet/cycle."""
        return self._inner.clamped_rates

    def rate(self, flow_id: int) -> float:
        """Effective (post-clamp) injection rate of the wrapped flow."""
        return self._inner.rate(flow_id)

    def packets_at(self, flow: Flow, cycle: int) -> int:
        return self._inner.packets_at(flow, cycle)

    def next_injection_cycle(self, flow: Flow, from_cycle: int) -> Optional[int]:
        return self._inner.next_injection_cycle(flow, from_cycle)
