"""Traffic generation.

The paper drives each design with synthetic traffic "modeling a uniform
random injection rate to meet the specified bandwidth for each flow" (§VI).
``BernoulliTraffic`` implements that; ``ScriptedTraffic`` injects packets at
exact cycles and is used by the Fig 7 reproduction and by unit tests.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.config import NocConfig
from repro.sim.flow import Flow


class TrafficModel:
    """Interface: how many packets does ``flow`` inject at ``cycle``?"""

    def packets_at(self, flow: Flow, cycle: int) -> int:
        raise NotImplementedError


class BernoulliTraffic(TrafficModel):
    """Per-cycle Bernoulli packet injection at each flow's bandwidth.

    Each flow gets an independent deterministic RNG stream (derived from
    the base seed and the flow id) so results are reproducible and
    insensitive to flow iteration order.
    """

    def __init__(self, cfg: NocConfig, flows: Sequence[Flow], seed: int = 1):
        self._rates: Dict[int, float] = {}
        self._rngs: Dict[int, random.Random] = {}
        for flow in flows:
            rate = cfg.flow_rate_packets_per_cycle(flow.bandwidth_bps)
            if rate > 1.0:
                raise ValueError(
                    "flow %d needs %.2f packets/cycle; exceeds one "
                    "injection port" % (flow.flow_id, rate)
                )
            self._rates[flow.flow_id] = rate
            self._rngs[flow.flow_id] = random.Random((seed << 20) ^ flow.flow_id)

    def rate(self, flow_id: int) -> float:
        return self._rates[flow_id]

    def packets_at(self, flow: Flow, cycle: int) -> int:
        rate = self._rates[flow.flow_id]
        if rate <= 0.0:
            return 0
        return 1 if self._rngs[flow.flow_id].random() < rate else 0


class ScriptedTraffic(TrafficModel):
    """Injects packets at exact (cycle, flow_id) points."""

    def __init__(self, schedule: Iterable[Tuple[int, int]]):
        self._schedule: Dict[Tuple[int, int], int] = {}
        for cycle, flow_id in schedule:
            key = (cycle, flow_id)
            self._schedule[key] = self._schedule.get(key, 0) + 1

    def packets_at(self, flow: Flow, cycle: int) -> int:
        return self._schedule.get((cycle, flow.flow_id), 0)

    def remaining(self) -> int:
        return sum(self._schedule.values())


class RateScaledTraffic(TrafficModel):
    """Wraps another model, scaling all bandwidths by a load factor.

    Used by load-sweep ablations to push designs toward saturation.
    """

    def __init__(
        self,
        cfg: NocConfig,
        flows: Sequence[Flow],
        scale: float,
        seed: int = 1,
    ):
        if scale < 0:
            raise ValueError("load scale must be non-negative")
        scaled: List[Flow] = [
            Flow(
                flow_id=f.flow_id,
                src=f.src,
                dst=f.dst,
                bandwidth_bps=f.bandwidth_bps * scale,
                route=f.route,
                name=f.name,
            )
            for f in flows
        ]
        self._inner = BernoulliTraffic(cfg, scaled, seed=seed)

    def packets_at(self, flow: Flow, cycle: int) -> int:
        return self._inner.packets_at(flow, cycle)
