"""Traffic generation.

The paper drives each design with synthetic traffic "modeling a uniform
random injection rate to meet the specified bandwidth for each flow" (§VI).
``BernoulliTraffic`` implements that; ``ScriptedTraffic`` injects packets at
exact cycles and is used by the Fig 7 reproduction and by unit tests.

Traffic models expose two queries:

* :meth:`TrafficModel.packets_at` — how many packets does ``flow`` inject
  at ``cycle``?  This is the classic per-cycle interface.
* :meth:`TrafficModel.next_injection_cycle` — the earliest cycle at or
  after ``from_cycle`` at which the flow *may* inject.  The active-set
  simulation kernel uses this to skip idle cycles entirely instead of
  polling every flow every cycle.  The base-class default returns
  ``from_cycle`` ("poll me every cycle"), which is always correct.

``BernoulliTraffic`` pre-draws each flow's next injection cycle by
sampling the geometric inter-arrival distribution.  Its default
``mode="predraw"`` samples the geometric gap by counting Bernoulli trials
on the same per-flow RNG stream the seed kernel consumed one-draw-per-cycle,
so the injection schedule is bit-identical to the historical per-cycle
draws.  ``mode="geometric"`` uses inverse-CDF sampling (one draw per
packet — fastest, distribution-equivalent but a different schedule) and
``mode="legacy"`` keeps the original draw-on-every-``packets_at``-call
behaviour for regression checks.
"""

from __future__ import annotations

import collections
import math
import random
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config import NocConfig
from repro.sim.flow import Flow

#: Injection-schedule sampling strategies for ``BernoulliTraffic``.
BERNOULLI_MODES = ("predraw", "geometric", "legacy")

#: Arrival processes selectable on :class:`RateScaledTraffic` (the
#: sweep/farm ``--arrival`` knob).  ``bernoulli`` is the paper's
#: memoryless injection; ``onoff`` gates it with a two-state burst
#: modulator whose quiet state is silent; ``mmpp`` keeps a reduced
#: quiet-state rate (a 2-state Markov-modulated Poisson process).
ARRIVALS = ("bernoulli", "onoff", "mmpp")


class TrafficModel:
    """Interface: how many packets does ``flow`` inject at ``cycle``?

    Implementations model the §VI workloads; the optional
    :meth:`next_injection_cycle` query additionally lets the active-set
    kernels skip idle cycles (see ``docs/kernel.md``).
    """

    def packets_at(self, flow: Flow, cycle: int) -> int:
        raise NotImplementedError

    def next_injection_cycle(self, flow: Flow, from_cycle: int) -> Optional[int]:
        """Earliest cycle >= ``from_cycle`` at which ``flow`` may inject.

        Returns ``None`` if the flow will never inject again.  The default
        conservatively requests a poll on every cycle.
        """
        return from_cycle


class BernoulliTraffic(TrafficModel):
    """Per-cycle Bernoulli packet injection at each flow's bandwidth (§VI:
    "a uniform random injection rate to meet the specified bandwidth").

    Each flow gets an independent deterministic RNG stream (derived from
    the base seed and the flow id) so results are reproducible and
    insensitive to flow iteration order.

    Args:
        cfg: Network configuration (converts bandwidth to packets/cycle).
        flows: Flow set to drive.
        seed: Base RNG seed.
        mode: One of :data:`BERNOULLI_MODES` — see the module docstring.
        clamp: Clamp per-flow rates above 1 packet/cycle to exactly 1.0
            (a saturated injection port) instead of raising.  Clamped
            flows are recorded in :attr:`clamped_rates`.
    """

    def __init__(
        self,
        cfg: NocConfig,
        flows: Sequence[Flow],
        seed: int = 1,
        mode: str = "predraw",
        clamp: bool = False,
    ):
        if mode not in BERNOULLI_MODES:
            raise ValueError(
                "unknown Bernoulli mode %r (have %s)"
                % (mode, ", ".join(BERNOULLI_MODES))
            )
        self.mode = mode
        self._rates: Dict[int, float] = {}
        self._rngs: Dict[int, random.Random] = {}
        #: flow_id -> unclamped rate, for flows clamped to 1 packet/cycle.
        self.clamped_rates: Dict[int, float] = {}
        #: flow_id -> pre-drawn next injection cycle (predraw/geometric).
        self._next: Dict[int, Optional[int]] = {}
        for flow in flows:
            rate = cfg.flow_rate_packets_per_cycle(flow.bandwidth_bps)
            if rate > 1.0:
                if not clamp:
                    raise ValueError(
                        "flow %d needs %.2f packets/cycle; exceeds one "
                        "injection port" % (flow.flow_id, rate)
                    )
                self.clamped_rates[flow.flow_id] = rate
                rate = 1.0
            self._rates[flow.flow_id] = rate
            self._rngs[flow.flow_id] = random.Random((seed << 20) ^ flow.flow_id)

    def rate(self, flow_id: int) -> float:
        return self._rates[flow_id]

    def offered_rate(self, flow_id: int) -> float:
        """Configured mean rate before injection-port clamping."""
        return self.clamped_rates.get(flow_id, self._rates[flow_id])

    def achieved_rate(self, flow_id: int) -> float:
        """Expected mean injection rate actually delivered (post-clamp)."""
        return self._rates[flow_id]

    # -- schedule sampling ---------------------------------------------

    def _draw_gap(self, flow_id: int) -> Optional[int]:
        """Sample the geometric gap to the next injection (in cycles)."""
        rate = self._rates[flow_id]
        if rate <= 0.0:
            return None
        if rate >= 1.0:
            return 1
        rng = self._rngs[flow_id]
        if self.mode == "geometric":
            # Inverse-CDF: one draw per packet.  P(gap = k) = (1-p)^(k-1) p.
            u = rng.random()
            return 1 + int(math.log(1.0 - u) / math.log(1.0 - rate))
        # predraw: count Bernoulli trials so the stream (and therefore the
        # schedule) is bit-identical to historical one-draw-per-cycle.
        gap = 1
        rng_random = rng.random
        while rng_random() >= rate:
            gap += 1
        return gap

    def _peek_next(self, flow_id: int) -> Optional[int]:
        """The pre-drawn next injection cycle for ``flow_id``."""
        if flow_id not in self._next:
            gap = self._draw_gap(flow_id)
            # Cycle numbering starts at 0: a gap of 1 from "before cycle 0"
            # means the first injection lands on cycle 0 (matching draw #0
            # of the per-cycle stream).
            self._next[flow_id] = None if gap is None else gap - 1
        return self._next[flow_id]

    def packets_at(self, flow: Flow, cycle: int) -> int:
        rate = self._rates[flow.flow_id]
        if rate <= 0.0:
            return 0
        if self.mode == "legacy":
            return 1 if self._rngs[flow.flow_id].random() < rate else 0
        nxt = self._peek_next(flow.flow_id)
        if nxt is None or nxt > cycle:
            return 0
        # Catch up if the caller skipped past pre-drawn injections.
        while nxt is not None and nxt < cycle:
            gap = self._draw_gap(flow.flow_id)
            nxt = None if gap is None else nxt + gap
        self._next[flow.flow_id] = nxt
        if nxt != cycle:
            return 0
        gap = self._draw_gap(flow.flow_id)
        self._next[flow.flow_id] = None if gap is None else nxt + gap
        return 1

    def next_injection_cycle(self, flow: Flow, from_cycle: int) -> Optional[int]:
        if self.mode == "legacy":
            return from_cycle if self._rates[flow.flow_id] > 0.0 else None
        nxt = self._peek_next(flow.flow_id)
        while nxt is not None and nxt < from_cycle:
            gap = self._draw_gap(flow.flow_id)
            nxt = None if gap is None else nxt + gap
        self._next[flow.flow_id] = nxt
        return nxt


class MmppTraffic(TrafficModel):
    """Two-state Markov-modulated (ON/OFF bursty) packet injection.

    Each flow alternates between an ON state injecting Bernoulli
    packets at an amplified burst rate and a quiet state injecting at
    ``quiet_scale`` times that rate (0 = silent, the classic ON-OFF
    source).  State durations are geometric with means ``on_cycles`` /
    ``off_cycles``, so the process is memoryless within a state and the
    stationary ON fraction (duty cycle) is ``on/(on+off)``.  The burst
    rate is solved so the **mean** rate matches each flow's configured
    bandwidth — the same offered load as :class:`BernoulliTraffic`,
    delivered in bursts::

        rate_on = rate / (duty + (1 - duty) * quiet_scale)

    clamped at 1 packet/cycle (a saturated injection port; recorded in
    :attr:`clamped_rates`, which then lowers the achieved mean).

    Determinism matches ``BernoulliTraffic``: one RNG stream per flow
    (derived from seed and flow id), consumed by a single monotone walk
    that interleaves state-duration and injection-gap draws, so the
    schedule is independent of query order and bit-identical across the
    legacy/active/event kernels and the batched engine.
    """

    def __init__(
        self,
        cfg: NocConfig,
        flows: Sequence[Flow],
        seed: int = 1,
        on_cycles: float = 64.0,
        off_cycles: float = 192.0,
        quiet_scale: float = 0.0,
        clamp: bool = False,
    ):
        if on_cycles < 1.0 or off_cycles < 1.0:
            raise ValueError("mean state durations must be >= 1 cycle")
        if not 0.0 <= quiet_scale <= 1.0:
            raise ValueError("quiet_scale must be in [0, 1]")
        self.on_cycles = on_cycles
        self.off_cycles = off_cycles
        self.quiet_scale = quiet_scale
        self.duty = on_cycles / (on_cycles + off_cycles)
        self._rates: Dict[int, float] = {}
        self._burst: Dict[int, float] = {}
        self._rngs: Dict[int, random.Random] = {}
        #: flow_id -> requested burst rate, for flows whose ON-state
        #: rate clamped at 1 packet/cycle.
        self.clamped_rates: Dict[int, float] = {}
        #: flow_id -> pre-drawn next injection cycle (None = never).
        self._next: Dict[int, Optional[int]] = {}
        # Monotone walk state: last injection position, whether the
        # current modulator state is ON, and its end cycle (exclusive).
        self._pos: Dict[int, int] = {}
        self._on: Dict[int, bool] = {}
        self._seg_end: Dict[int, int] = {}
        amplify = 1.0 / (self.duty + (1.0 - self.duty) * quiet_scale)
        self._amplify = amplify
        #: flow_id -> configured mean rate before any clamping.
        self._offered: Dict[int, float] = {}
        for flow in flows:
            rate = cfg.flow_rate_packets_per_cycle(flow.bandwidth_bps)
            self._offered[flow.flow_id] = rate
            if rate > 1.0:
                if not clamp:
                    raise ValueError(
                        "flow %d needs %.2f packets/cycle; exceeds one "
                        "injection port" % (flow.flow_id, rate)
                    )
                self.clamped_rates[flow.flow_id] = rate
                rate = 1.0
            burst = rate * amplify
            if burst > 1.0:
                self.clamped_rates.setdefault(flow.flow_id, burst)
                burst = 1.0
            self._rates[flow.flow_id] = rate
            self._burst[flow.flow_id] = burst
            self._rngs[flow.flow_id] = random.Random((seed << 20) ^ flow.flow_id)

    def rate(self, flow_id: int) -> float:
        """Configured mean injection rate (packets/cycle)."""
        return self._rates[flow_id]

    def offered_rate(self, flow_id: int) -> float:
        """Configured mean rate before any clamping."""
        return self._offered[flow_id]

    def achieved_rate(self, flow_id: int) -> float:
        """Expected mean injection rate actually delivered.

        Burst clamping silently lowers the achieved mean below the
        configured bandwidth: the ON-state rate saturates at 1
        packet/cycle, so the stationary mean drops to
        ``burst_clamped / amplify`` — this is the number sweep rows must
        report so saturated bursty points aren't misread as still
        offering the nominal load.
        """
        return self._burst[flow_id] / self._amplify

    # -- the monotone walk ---------------------------------------------

    def _draw_duration(self, flow_id: int, mean: float) -> int:
        """Geometric state duration with the given mean, >= 1 cycle."""
        leave = 1.0 / mean
        if leave >= 1.0:
            return 1
        u = self._rngs[flow_id].random()
        return 1 + int(math.log(1.0 - u) / math.log(1.0 - leave))

    def _advance(self, flow_id: int) -> Optional[int]:
        """Next injection cycle strictly after the walk position.

        One independent Bernoulli trial per cycle at that cycle's
        modulated rate, sampled segment-at-a-time by inverse CDF; a
        geometric draw overshooting its state segment restarts at the
        boundary, which is distribution-exact by memorylessness.
        """
        if self._burst[flow_id] <= 0.0:
            return None
        rng = self._rngs[flow_id]
        if flow_id not in self._on:
            # Stationary start: ON with probability ``duty``.
            self._pos[flow_id] = -1
            self._on[flow_id] = rng.random() < self.duty
            self._seg_end[flow_id] = self._draw_duration(
                flow_id,
                self.on_cycles if self._on[flow_id] else self.off_cycles,
            )
        cycle = self._pos[flow_id] + 1
        on = self._on[flow_id]
        seg_end = self._seg_end[flow_id]
        while True:
            while cycle >= seg_end:
                on = not on
                seg_end += self._draw_duration(
                    flow_id, self.on_cycles if on else self.off_cycles
                )
            rate = self._burst[flow_id]
            if not on:
                rate *= self.quiet_scale
            if rate <= 0.0:
                cycle = seg_end
                continue
            if rate >= 1.0:
                candidate = cycle
            else:
                u = rng.random()
                gap = 1 + int(math.log(1.0 - u) / math.log(1.0 - rate))
                candidate = cycle + gap - 1
            if candidate < seg_end:
                self._pos[flow_id] = candidate
                self._on[flow_id] = on
                self._seg_end[flow_id] = seg_end
                return candidate
            # No success before the state flips; restart at the boundary
            # (geometric memorylessness: conditioning on "later than the
            # remaining segment" leaves a fresh geometric).
            cycle = seg_end

    def _peek_next(self, flow_id: int) -> Optional[int]:
        if flow_id not in self._next:
            self._next[flow_id] = self._advance(flow_id)
        return self._next[flow_id]

    def packets_at(self, flow: Flow, cycle: int) -> int:
        nxt = self._peek_next(flow.flow_id)
        if nxt is None or nxt > cycle:
            return 0
        while nxt is not None and nxt < cycle:
            nxt = self._advance(flow.flow_id)
        self._next[flow.flow_id] = nxt
        if nxt != cycle:
            return 0
        self._next[flow.flow_id] = self._advance(flow.flow_id)
        return 1

    def next_injection_cycle(self, flow: Flow, from_cycle: int) -> Optional[int]:
        nxt = self._peek_next(flow.flow_id)
        while nxt is not None and nxt < from_cycle:
            nxt = self._advance(flow.flow_id)
        self._next[flow.flow_id] = nxt
        return nxt


class ScriptedTraffic(TrafficModel):
    """Injects packets at exact (cycle, flow_id) points (drives the Fig 7
    four-flow scenario and the unit tests).

    Schedule entries are consumed as they are injected, so
    :meth:`remaining` reports how many scripted packets are still pending
    (it used to report the initial total forever).
    """

    def __init__(self, schedule: Iterable[Tuple[int, int]]):
        counts: Dict[int, Dict[int, int]] = {}
        for cycle, flow_id in schedule:
            per_flow = counts.setdefault(flow_id, {})
            per_flow[cycle] = per_flow.get(cycle, 0) + 1
        #: flow_id -> deque of (cycle, count), sorted by cycle.
        self._by_flow: Dict[int, Deque[Tuple[int, int]]] = {
            flow_id: collections.deque(sorted(per_flow.items()))
            for flow_id, per_flow in counts.items()
        }

    def packets_at(self, flow: Flow, cycle: int) -> int:
        queue = self._by_flow.get(flow.flow_id)
        if not queue:
            return 0
        # Entries strictly in the past can never fire (kernel cycles are
        # monotonic); drop them so remaining() converges.
        while queue and queue[0][0] < cycle:
            queue.popleft()
        if queue and queue[0][0] == cycle:
            return queue.popleft()[1]
        return 0

    def next_injection_cycle(self, flow: Flow, from_cycle: int) -> Optional[int]:
        queue = self._by_flow.get(flow.flow_id)
        if not queue:
            return None
        while queue and queue[0][0] < from_cycle:
            queue.popleft()
        return queue[0][0] if queue else None

    def remaining(self) -> int:
        return sum(
            count for queue in self._by_flow.values() for _cycle, count in queue
        )


class RateScaledTraffic(TrafficModel):
    """Wraps Bernoulli injection, scaling all bandwidths by a load factor
    (the §VI saturation axis: "SMART is limited by the available link
    bandwidth in a mesh ... while Dedicated has no bandwidth limitation").

    Used by load-sweep ablations to push designs toward saturation.  A
    flow whose scaled rate exceeds 1 packet/cycle is clamped to exactly
    1.0 — a saturated injection port — instead of raising, so sweeps can
    run past the saturation knee; clamped flows are recorded in
    :attr:`clamped_rates` (flow_id -> requested, unclamped rate).

    ``arrival`` selects the injection process (:data:`ARRIVALS`):
    Bernoulli by default, or the bursty ON-OFF/MMPP modulator of
    :class:`MmppTraffic` with knobs forwarded via ``arrival_params``
    (``on_cycles``, ``off_cycles``, ``quiet_scale``).  Flows listed in
    ``fixed_flow_ids`` keep their base bandwidth instead of scaling
    with the load — tenant-mix sweeps pin a foreground app at its
    mapped bandwidth while the swept load drives the background.
    """

    def __init__(
        self,
        cfg: NocConfig,
        flows: Sequence[Flow],
        scale: float,
        seed: int = 1,
        mode: str = "predraw",
        arrival: str = "bernoulli",
        arrival_params: Optional[Dict[str, float]] = None,
        fixed_flow_ids: Sequence[int] = (),
    ):
        if scale < 0:
            raise ValueError("load scale must be non-negative")
        if arrival not in ARRIVALS:
            raise ValueError(
                "unknown arrival process %r (have %s)"
                % (arrival, ", ".join(ARRIVALS))
            )
        self.scale = scale
        self.arrival = arrival
        fixed = frozenset(fixed_flow_ids)
        scaled: List[Flow] = [
            Flow(
                flow_id=f.flow_id,
                src=f.src,
                dst=f.dst,
                bandwidth_bps=(
                    f.bandwidth_bps
                    if f.flow_id in fixed
                    else f.bandwidth_bps * scale
                ),
                route=f.route,
                name=f.name,
                tenant=f.tenant,
            )
            for f in flows
        ]
        self._flow_ids = tuple(f.flow_id for f in scaled)
        params = dict(arrival_params or {})
        if arrival == "bernoulli":
            if params:
                raise ValueError(
                    "arrival_params only apply to bursty arrivals, got %r"
                    % (params,)
                )
            self._inner: TrafficModel = BernoulliTraffic(
                cfg, scaled, seed=seed, mode=mode, clamp=True
            )
        else:
            if arrival == "mmpp":
                params.setdefault("quiet_scale", 0.25)
            self._inner = MmppTraffic(
                cfg, scaled, seed=seed, clamp=True, **params
            )

    @property
    def clamped_rates(self) -> Dict[int, float]:
        """flow_id -> requested rate, for flows clamped at 1 packet/cycle."""
        return self._inner.clamped_rates

    def rate(self, flow_id: int) -> float:
        """Effective (post-clamp) injection rate of the wrapped flow."""
        return self._inner.rate(flow_id)

    def offered_rate(self, flow_id: int) -> float:
        """Configured (pre-clamp) mean rate of the wrapped flow."""
        return self._inner.offered_rate(flow_id)

    def achieved_rate(self, flow_id: int) -> float:
        """Expected post-clamp mean rate of the wrapped flow (for bursty
        arrivals this is below the offered rate whenever the ON-state
        burst clamps at the injection port)."""
        return self._inner.achieved_rate(flow_id)

    def total_offered_rate(self) -> float:
        """Sum of configured mean rates over all flows (packets/cycle)."""
        return sum(
            self._inner.offered_rate(fid) for fid in self._flow_ids
        )

    def total_achieved_rate(self) -> float:
        """Sum of expected post-clamp mean rates over all flows."""
        return sum(
            self._inner.achieved_rate(fid) for fid in self._flow_ids
        )

    def packets_at(self, flow: Flow, cycle: int) -> int:
        return self._inner.packets_at(flow, cycle)

    def next_injection_cycle(self, flow: Flow, from_cycle: int) -> Optional[int]:
        return self._inner.next_injection_cycle(flow, from_cycle)
