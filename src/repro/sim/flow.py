"""Traffic flows and their static source routes.

A flow is one edge of a mapped application task graph: a (source core,
destination core) pair with a bandwidth requirement.  Routes are static
(computed offline by the mapping flow, §IV Routing) and expressed as the
sequence of output ports taken at each router along the path, ending with
``Port.CORE`` at the destination router.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from repro.sim.topology import Mesh, Port


@dataclasses.dataclass(frozen=True)
class Flow:
    """A mapped communication flow with its preset route.

    Attributes:
        flow_id: Unique id within a flow set.
        src: Source node (core/NIC) id.
        dst: Destination node id.
        bandwidth_bps: Required bandwidth in bytes per second.
        route: Output port taken at each router from the source router to
            the destination router; the final entry must be ``Port.CORE``.
        name: Optional human-readable label (e.g. "iqzz->idct").
        tenant: Optional tenant label for per-tenant SLO accounting
            (empty = untagged; see ``repro.sim.stats``).
    """

    flow_id: int
    src: int
    dst: int
    bandwidth_bps: float
    route: Tuple[Port, ...]
    name: str = ""
    tenant: str = ""

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError("flow %d is a self-loop at node %d" % (self.flow_id, self.src))
        if self.bandwidth_bps < 0:
            raise ValueError("flow %d has negative bandwidth" % self.flow_id)
        if not self.route:
            raise ValueError("flow %d has an empty route" % self.flow_id)
        if self.route[-1] is not Port.CORE:
            raise ValueError("flow %d route must end with CORE (ejection)" % self.flow_id)
        if any(p is Port.CORE for p in self.route[:-1]):
            raise ValueError("flow %d route ejects before the last router" % self.flow_id)

    def routers(self, mesh: Mesh) -> List[int]:
        """Routers visited, source router first, destination router last."""
        nodes = [self.src]
        for port in self.route[:-1]:
            nxt = mesh.neighbor(nodes[-1], port)
            if nxt is None:
                raise ValueError(
                    "flow %d route leaves the mesh at node %d going %s"
                    % (self.flow_id, nodes[-1], port.name)
                )
            nodes.append(nxt)
        if nodes[-1] != self.dst:
            raise ValueError(
                "flow %d route ends at node %d, not destination %d"
                % (self.flow_id, nodes[-1], self.dst)
            )
        return nodes

    def hops(self, mesh: Mesh) -> int:
        """Router-to-router links traversed."""
        return len(self.routers(mesh)) - 1

    def port_traversals(self, mesh: Mesh) -> List[Tuple[int, Port, Port]]:
        """(router, in_port, out_port) triples along the route.

        The source router's in-port is CORE (injection from the NIC).
        """
        nodes = self.routers(mesh)
        triples = []
        in_port = Port.CORE
        for node, out_port in zip(nodes, self.route):
            triples.append((node, in_port, out_port))
            in_port = out_port.opposite
        return triples

    def links(self, mesh: Mesh) -> List[Tuple[int, int]]:
        """Directed router-to-router links used by this flow."""
        nodes = self.routers(mesh)
        return list(zip(nodes, nodes[1:]))


def validate_flow_set(flows: List[Flow], mesh: Mesh) -> None:
    """Check ids are unique and every route is mesh-legal."""
    seen = set()
    for flow in flows:
        if flow.flow_id in seen:
            raise ValueError("duplicate flow id %d" % flow.flow_id)
        seen.add(flow.flow_id)
        flow.routers(mesh)  # raises on malformed routes


def xy_route(mesh: Mesh, src: int, dst: int) -> Tuple[Port, ...]:
    """Dimension-ordered (X then Y) minimal route; always deadlock-free."""
    if src == dst:
        raise ValueError("no route needed from a node to itself")
    sx, sy = mesh.coords(src)
    dx, dy = mesh.coords(dst)
    ports: List[Port] = []
    step_x = Port.EAST if dx > sx else Port.WEST
    ports.extend([step_x] * abs(dx - sx))
    step_y = Port.NORTH if dy > sy else Port.SOUTH
    ports.extend([step_y] * abs(dy - sy))
    ports.append(Port.CORE)
    return tuple(ports)
