"""Cycle-accurate NoC simulation substrate.

Every export is indexed with a one-line summary and its paper anchor in
``docs/api.md``; the execution kernels are described in ``docs/kernel.md``.
"""

from repro.sim.arbiter import FixedPriorityArbiter, RoundRobinArbiter
from repro.sim.batch import BatchedEventNetworks, LockstepNetworks, run_batched
from repro.sim.buffers import FreeVcQueue, InputBuffer, VirtualChannel
from repro.sim.flow import Flow, validate_flow_set, xy_route
from repro.sim.network import Network, RouterConfig
from repro.sim.packet import Credit, Flit, FlitType, Packet
from repro.sim.patterns import (
    PATTERNS,
    bandwidth_for_injection_rate,
    synthetic_flows,
)
from repro.sim.segments import (
    BufferEnd,
    NicEnd,
    NicStart,
    OutputStart,
    Segment,
    SegmentMap,
)
from repro.sim.stats import (
    EventCounters,
    HIST_NUM_BUCKETS,
    LatencyHistogram,
    LatencySummary,
    SimResult,
    StatsCollector,
    accepted_flits_per_cycle,
    aggregate_summaries,
    ci95_halfwidth,
    hist_bucket,
    hist_bucket_bounds,
    slo_verdicts,
)
from repro.sim.topology import MM_PER_HOP, Mesh, Port
from repro.sim.traffic import (
    ARRIVALS,
    BernoulliTraffic,
    MmppTraffic,
    RateScaledTraffic,
    ScriptedTraffic,
    TrafficModel,
)

__all__ = [
    "ARRIVALS",
    "BatchedEventNetworks",
    "BernoulliTraffic",
    "BufferEnd",
    "Credit",
    "EventCounters",
    "FixedPriorityArbiter",
    "Flit",
    "FlitType",
    "Flow",
    "FreeVcQueue",
    "HIST_NUM_BUCKETS",
    "InputBuffer",
    "LatencyHistogram",
    "LatencySummary",
    "MmppTraffic",
    "LockstepNetworks",
    "MM_PER_HOP",
    "Mesh",
    "Network",
    "NicEnd",
    "NicStart",
    "OutputStart",
    "PATTERNS",
    "Packet",
    "Port",
    "RateScaledTraffic",
    "RouterConfig",
    "RoundRobinArbiter",
    "ScriptedTraffic",
    "Segment",
    "SegmentMap",
    "SimResult",
    "StatsCollector",
    "TrafficModel",
    "VirtualChannel",
    "accepted_flits_per_cycle",
    "aggregate_summaries",
    "bandwidth_for_injection_rate",
    "ci95_halfwidth",
    "hist_bucket",
    "hist_bucket_bounds",
    "run_batched",
    "slo_verdicts",
    "synthetic_flows",
    "validate_flow_set",
    "xy_route",
]
