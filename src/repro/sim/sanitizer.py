"""Kernel sanitizer: runtime cross-checks of kernel-internal invariants.

The active and event kernels earn their speed from derived state — the
active sets (which routers/NICs/sinks/channels still have work), the
cached ``_clock_ports`` port total, incremental ``occupancy`` counts,
and the chain dependency graph — all maintained incrementally instead
of recomputed.  A maintenance bug there does not crash: it silently
skips work or double-counts, and the cross-kernel fuzz harness reports
a counter diff hundreds of cycles after the root cause.  Sanitize mode
(``SMART_SANITIZE=1`` or ``Network(..., sanitize=True)``) re-derives
each invariant from the ground-truth component state after every step
and raises :class:`SanitizerError` at the *first* divergence, turning a
bisection hunt into a stack trace.

Checks (all duck-typed so one module serves both network classes):

- **Active-set membership** — every component with work must be in its
  kernel's active set (exact equality plus the ``_clock_ports`` total
  for the event kernel's router set, superset form elsewhere).
- **Occupancy consistency** — each router/sink's incremental
  ``occupancy`` equals a full scan of its input-buffer VCs.  This holds
  at step boundaries even with unsettled chains: a chain defers the
  buffer write and the occupancy increment together.
- **Counter integrality at ``_sync``** — integral
  :class:`~repro.sim.stats.EventCounters` fields must still be ints;
  ``*_mm`` fields must sit on exact integers while ``mm_per_hop`` is
  integral (both kernels accumulate them as hop-count multiples).
- **Chain-graph sanity at ``_sync``** — feeder links must point
  strictly backwards (``feeder.cid < cid``), making the settlement
  graph acyclic, and every ``_chain_writers`` entry must agree with its
  key.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Iterator, Optional, Tuple

from repro.sim.stats import EventCounters

#: Environment variable that switches sanitize mode on globally.
ENV_FLAG = "SMART_SANITIZE"


class SanitizerError(AssertionError):
    """A kernel-internal invariant failed under sanitize mode."""


def sanitize_from_env() -> bool:
    """Default for ``sanitize=None``: true when ``SMART_SANITIZE`` is a
    non-empty value other than ``0``."""
    value = os.environ.get(ENV_FLAG, "").strip()
    return bool(value) and value != "0"


def resolve(sanitize: Optional[bool]) -> bool:
    """Resolve a constructor's ``sanitize`` argument against the env."""
    if sanitize is None:
        return sanitize_from_env()
    return bool(sanitize)


def _fail(net: object, what: str) -> None:
    raise SanitizerError(
        "[sanitize] %s kernel=%s cycle=%d: %s"
        % (
            type(net).__name__,
            getattr(net, "kernel", "?"),
            getattr(net, "cycle", -1),
            what,
        )
    )


def _is_chain(stream: object) -> bool:
    # Live streams are plain tuples; scheduled chains are objects with
    # a chain id.
    return hasattr(stream, "cid")


# ----------------------------------------------------------------------
# Per-step checks
# ----------------------------------------------------------------------

def check_network(net: object) -> None:
    """Cross-check a :class:`~repro.sim.network.Network` after a step."""
    routers = net.routers
    active = net._active_routers
    if net.kernel == "event":
        truth = {node for node, r in routers.items() if r.active}
        if active != truth:
            _fail(
                net,
                "_active_routers %r != ground truth %r"
                % (sorted(active), sorted(truth)),
            )
        ports = sum(len(routers[node].buffers) for node in active)
        if net._clock_ports != ports:
            _fail(
                net,
                "_clock_ports=%d but active routers hold %d buffered "
                "ports" % (net._clock_ports, ports),
            )
    elif net.kernel == "active":
        for node, router in routers.items():
            if router.active and node not in active:
                _fail(
                    net,
                    "router %d has work (reservations=%d occupancy=%d) "
                    "but is missing from _active_routers" % (
                        node, len(router.reservations), router.occupancy
                    ),
                )
    if net.kernel in ("active", "event"):
        nics = net._active_nics
        for node, nic in net.nic_sources.items():
            if node in nics:
                continue
            if nic.stream is not None and _is_chain(nic.stream):
                # Chained NICs sit out until their finish event re-arms
                # them.
                continue
            if nic.queued or nic.stream is not None:
                _fail(
                    net,
                    "NIC %d has work (queued=%d stream=%r) but is "
                    "missing from _active_nics"
                    % (node, nic.queued, nic.stream is not None),
                )
    for node, router in routers.items():
        scan = sum(buf.occupancy() for buf in router.buffers.values())
        if router.occupancy != scan:
            _fail(
                net,
                "router %d occupancy=%d but buffers hold %d flits"
                % (node, router.occupancy, scan),
            )


def check_dedicated(net: object) -> None:
    """Cross-check a ``DedicatedNetwork`` after a step."""
    if net.kernel in ("active", "event"):
        sinks = net._active_sinks
        for node, sink in net.sinks.items():
            if node in sinks:
                continue
            if sink.reservation is not None or sink.occupancy:
                _fail(
                    net,
                    "sink %d has work (reservation=%r occupancy=%d) but "
                    "is missing from _active_sinks" % (
                        node, sink.reservation is not None, sink.occupancy
                    ),
                )
        channels = net._active_channels
        for flow_id, channel in net.channels.items():
            if flow_id in channels:
                continue
            if channel.stream is not None and _is_chain(channel.stream):
                continue
            if channel.queue or channel.stream is not None:
                _fail(
                    net,
                    "channel %d has work (queue=%d stream=%r) but is "
                    "missing from _active_channels" % (
                        flow_id, len(channel.queue),
                        channel.stream is not None,
                    ),
                )
    for node, sink in net.sinks.items():
        scan = sum(buf.occupancy() for buf in sink.buffers.values())
        if sink.occupancy != scan:
            _fail(
                net,
                "sink %d occupancy=%d but buffers hold %d flits"
                % (node, sink.occupancy, scan),
            )


# ----------------------------------------------------------------------
# Sync-point checks (counters + chain graph)
# ----------------------------------------------------------------------

def _counter_fields(counters: EventCounters) -> Iterator[Tuple[str, object, bool]]:
    for field in dataclasses.fields(counters):
        yield (
            field.name,
            getattr(counters, field.name),
            field.type in ("int", int),
        )


def check_counters(net: object, mm_per_hop: float) -> None:
    """Verify counter integrality (called at every ``_sync``)."""
    for name, value, is_int in _counter_fields(net.counters):
        if is_int:
            if type(value) is not int:
                _fail(
                    net,
                    "counter %s=%r is %s, not int"
                    % (name, value, type(value).__name__),
                )
        elif float(mm_per_hop).is_integer():
            # mm counters accumulate hops * mm_per_hop; with an integral
            # pitch they must stay on exact integers.
            if not float(value).is_integer():
                _fail(
                    net,
                    "counter %s=%r is fractional although mm_per_hop=%r "
                    "is integral" % (name, value, mm_per_hop),
                )


def check_chain_graph(net: object) -> None:
    """Validate feeder links: strictly backwards-pointing, acyclic."""
    chains = getattr(net, "_chains", None)
    if not chains:
        return
    for cid, chain in chains.items():
        if chain.cid != cid:
            _fail(net, "chain registered as %d reports cid %d" % (cid, chain.cid))
        seen = {chain.cid}
        node = chain
        while True:
            feeder = getattr(node, "feeder", None)
            if feeder is None:
                break
            if feeder.cid >= node.cid:
                _fail(
                    net,
                    "chain %d has feeder %d: feeder links must point at "
                    "strictly earlier chains (producers before "
                    "consumers)" % (node.cid, feeder.cid),
                )
            if feeder.cid in seen:
                _fail(net, "feeder cycle through chain %d" % feeder.cid)
            seen.add(feeder.cid)
            node = feeder
    for key, writer in getattr(net, "_chain_writers", {}).items():
        if getattr(writer, "writer_key", key) != key:
            _fail(
                net,
                "chain writer registered under %r reports key %r"
                % (key, writer.writer_key),
            )
