"""Kernel sanitizer: runtime cross-checks of kernel-internal invariants.

The active and event kernels earn their speed from derived state — the
active sets (which routers/NICs/sinks/channels still have work), the
cached ``_clock_ports`` port total, incremental ``occupancy`` counts,
and the chain dependency graph — all maintained incrementally instead
of recomputed.  A maintenance bug there does not crash: it silently
skips work or double-counts, and the cross-kernel fuzz harness reports
a counter diff hundreds of cycles after the root cause.  Sanitize mode
(``SMART_SANITIZE=1`` or ``Network(..., sanitize=True)``) re-derives
each invariant from the ground-truth component state after every step
and raises :class:`SanitizerError` at the *first* divergence, turning a
bisection hunt into a stack trace.

Checks (all duck-typed so one module serves both network classes):

- **Active-set membership** — every component with work must be in its
  kernel's active set (exact equality plus the ``_clock_ports`` total
  for the event kernel's router set, superset form elsewhere).
- **Occupancy consistency** — each router/sink's incremental
  ``occupancy`` equals a full scan of its input-buffer VCs.  This holds
  at step boundaries even with unsettled chains: a chain defers the
  buffer write and the occupancy increment together.
- **Counter integrality at ``_sync``** — integral
  :class:`~repro.sim.stats.EventCounters` fields must still be ints;
  ``*_mm`` fields must sit on exact integers while ``mm_per_hop`` is
  integral (both kernels accumulate them as hop-count multiples).
- **Chain-graph sanity at ``_sync``** — feeder links must point
  strictly backwards (``feeder.cid < cid``), making the settlement
  graph acyclic, and every ``_chain_writers`` entry must agree with its
  key.
- **Batched SoA cross-checks** (:func:`check_batch`, run at every
  ``_sync_all`` of :class:`~repro.sim.batch.BatchedEventNetworks`) —
  column state vs per-lane object state: flit conservation (created =
  queued + buffered + in-flight + delivered), active-set equality with
  the occupancy/reservation columns, span-record shape and settlement
  bounds, the one-writer-per-buffer ``streaming`` mirror, and the
  next-wake cache invariant (every armed wake has a live ring entry;
  a head grantable *now* implies an armed wake no later than now).
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, Iterator, Optional, Tuple

from repro.sim.stats import EventCounters, LatencyHistogram

#: Environment variable that switches sanitize mode on globally.
ENV_FLAG = "SMART_SANITIZE"


class SanitizerError(AssertionError):
    """A kernel-internal invariant failed under sanitize mode."""


def sanitize_from_env() -> bool:
    """Default for ``sanitize=None``: true when ``SMART_SANITIZE`` is a
    non-empty value other than ``0``."""
    value = os.environ.get(ENV_FLAG, "").strip()
    return bool(value) and value != "0"


def resolve(sanitize: Optional[bool]) -> bool:
    """Resolve a constructor's ``sanitize`` argument against the env."""
    if sanitize is None:
        return sanitize_from_env()
    return bool(sanitize)


def _fail(net: object, what: str) -> None:
    raise SanitizerError(
        "[sanitize] %s kernel=%s cycle=%d: %s"
        % (
            type(net).__name__,
            getattr(net, "kernel", "?"),
            getattr(net, "cycle", -1),
            what,
        )
    )


def _is_chain(stream: object) -> bool:
    # Live streams are plain tuples; scheduled chains are objects with
    # a chain id.
    return hasattr(stream, "cid")


# ----------------------------------------------------------------------
# Per-step checks
# ----------------------------------------------------------------------

def check_network(net: object) -> None:
    """Cross-check a :class:`~repro.sim.network.Network` after a step."""
    routers = net.routers
    active = net._active_routers
    if net.kernel == "event":
        truth = {node for node, r in routers.items() if r.active}
        if active != truth:
            _fail(
                net,
                "_active_routers %r != ground truth %r"
                % (sorted(active), sorted(truth)),
            )
        ports = sum(len(routers[node].buffers) for node in active)
        if net._clock_ports != ports:
            _fail(
                net,
                "_clock_ports=%d but active routers hold %d buffered "
                "ports" % (net._clock_ports, ports),
            )
    elif net.kernel == "active":
        for node, router in routers.items():
            if router.active and node not in active:
                _fail(
                    net,
                    "router %d has work (reservations=%d occupancy=%d) "
                    "but is missing from _active_routers" % (
                        node, len(router.reservations), router.occupancy
                    ),
                )
    if net.kernel in ("active", "event"):
        nics = net._active_nics
        for node, nic in net.nic_sources.items():
            if node in nics:
                continue
            if nic.stream is not None and _is_chain(nic.stream):
                # Chained NICs sit out until their finish event re-arms
                # them.
                continue
            if nic.queued or nic.stream is not None:
                _fail(
                    net,
                    "NIC %d has work (queued=%d stream=%r) but is "
                    "missing from _active_nics"
                    % (node, nic.queued, nic.stream is not None),
                )
    for node, router in routers.items():
        scan = sum(buf.occupancy() for buf in router.buffers.values())
        if router.occupancy != scan:
            _fail(
                net,
                "router %d occupancy=%d but buffers hold %d flits"
                % (node, router.occupancy, scan),
            )


def check_dedicated(net: object) -> None:
    """Cross-check a ``DedicatedNetwork`` after a step."""
    if net.kernel in ("active", "event"):
        sinks = net._active_sinks
        for node, sink in net.sinks.items():
            if node in sinks:
                continue
            if sink.reservation is not None or sink.occupancy:
                _fail(
                    net,
                    "sink %d has work (reservation=%r occupancy=%d) but "
                    "is missing from _active_sinks" % (
                        node, sink.reservation is not None, sink.occupancy
                    ),
                )
        channels = net._active_channels
        for flow_id, channel in net.channels.items():
            if flow_id in channels:
                continue
            if channel.stream is not None and _is_chain(channel.stream):
                continue
            if channel.queue or channel.stream is not None:
                _fail(
                    net,
                    "channel %d has work (queue=%d stream=%r) but is "
                    "missing from _active_channels" % (
                        flow_id, len(channel.queue),
                        channel.stream is not None,
                    ),
                )
    for node, sink in net.sinks.items():
        scan = sum(buf.occupancy() for buf in sink.buffers.values())
        if sink.occupancy != scan:
            _fail(
                net,
                "sink %d occupancy=%d but buffers hold %d flits"
                % (node, sink.occupancy, scan),
            )


# ----------------------------------------------------------------------
# Sync-point checks (counters + chain graph)
# ----------------------------------------------------------------------

def _counter_fields(counters: EventCounters) -> Iterator[Tuple[str, object, bool]]:
    for field in dataclasses.fields(counters):
        yield (
            field.name,
            getattr(counters, field.name),
            field.type in ("int", int),
        )


def check_counters(net: object, mm_per_hop: float) -> None:
    """Verify counter integrality (called at every ``_sync``)."""
    for name, value, is_int in _counter_fields(net.counters):
        if is_int:
            if type(value) is not int:
                _fail(
                    net,
                    "counter %s=%r is %s, not int"
                    % (name, value, type(value).__name__),
                )
        elif float(mm_per_hop).is_integer():
            # mm counters accumulate hops * mm_per_hop; with an integral
            # pitch they must stay on exact integers.
            if not float(value).is_integer():
                _fail(
                    net,
                    "counter %s=%r is fractional although mm_per_hop=%r "
                    "is integral" % (name, value, mm_per_hop),
                )


# ----------------------------------------------------------------------
# Batched-engine checks (SoA columns vs ground-truth object state)
# ----------------------------------------------------------------------

def check_batch(eng: object) -> None:
    """Cross-check a ``BatchedEventNetworks`` engine at a sync point.

    Called from ``_sync_all`` with every unstopped lane settled through
    ``eng.cycle - 1`` and its deferred counter columns flushed, so the
    SoA columns must agree exactly with the lane networks' own object
    state (NIC queues, sink totals, stats) and with each other.
    """
    from . import batch as B  # deferred: batch imports this module

    now = eng.cycle
    nn = eng.num_nodes
    num_bufs = eng.num_bufs
    fpp = eng.lanes[0].cfg.flits_per_packet
    for lane, net in enumerate(eng.lanes):
        if eng._stopped[lane]:
            continue
        base = lane * nn
        buf_base = lane * num_bufs

        # Counter columns must be drained into EventCounters at sync.
        if any(eng.cnt[lane]):
            _fail(eng, "lane %d cnt columns not flushed at sync: %r"
                  % (lane, eng.cnt[lane]))
        check_counters(net, net._mm_per_hop)

        # Histogram / per-node delivery columns: the flushed collector
        # state plus any pending increments must equal the ground truth
        # recomputed from the delivered-packet list (the serial kernels
        # accumulate the same quantities inside on_deliver).
        stats = eng.lane_stats[lane]
        expect_hist = LatencyHistogram.from_values(
            p.head_latency for p in stats._delivered
        )
        got_hist = stats.hist.copy()
        for bucket, count in eng.hist_pend[lane].items():
            got_hist.counts[bucket] += count
        if got_hist != expect_hist:
            _fail(eng,
                  "lane %d histogram columns diverge from delivered "
                  "packets (flushed+pending total %d, truth %d)"
                  % (lane, got_hist.total, expect_hist.total))
        expect_nodes: Dict[int, int] = {}
        for p in stats._delivered:
            expect_nodes[p.dst] = expect_nodes.get(p.dst, 0) + p.size_flits
        got_nodes = dict(stats.node_flits)
        for node, flits in eng.node_pend[lane].items():
            got_nodes[node] = got_nodes.get(node, 0) + flits
        if got_nodes != expect_nodes:
            _fail(eng,
                  "lane %d per-node delivered-flit columns diverge "
                  "from delivered packets" % lane)

        # Span records: shape, settlement bounds, stream-list slots.
        nic_remaining = 0
        res_truth: dict = {}
        streaming_truth = set()
        for idx, rec in enumerate(eng.streams[lane]):
            if len(rec) != 23:
                _fail(eng, "lane %d span %d has %d slots, want 23"
                      % (lane, idx, len(rec)))
            if rec[B._R_LANE] != lane or rec[B._R_SIDX] != idx:
                _fail(eng, "lane %d span %d carries lane=%d sidx=%d"
                      % (lane, idx, rec[B._R_LANE], rec[B._R_SIDX]))
            kind = rec[B._R_KIND]
            if kind not in (B._K_FINAL, B._K_MID, B._K_NIC_BYP,
                            B._K_NIC_MID):
                _fail(eng, "lane %d span %d has kind %r" % (lane, idx, kind))
            nxt, end = rec[B._R_NEXT], rec[B._R_END]
            if nxt > end + 1:
                _fail(eng, "lane %d span %d over-settled: next=%d end=%d"
                      % (lane, idx, nxt, end))
            if nxt <= min(end, now - 1):
                _fail(eng,
                      "lane %d span %d not settled through %d: next=%d "
                      "end=%d" % (lane, idx, now - 1, nxt, end))
            if kind in (B._K_NIC_BYP, B._K_NIC_MID):
                if nxt <= end:
                    nic_remaining += end - nxt + 1
            else:
                # Router-sourced: holds its output reservation and the
                # streaming bit of its source buffer until teardown.
                res_truth[(rec[B._R_LN], rec[B._R_OUT])] = rec
                buf = rec[B._R_BUF]
                if buf in streaming_truth:
                    _fail(eng, "lane %d: two spans stream buffer %d"
                          % (lane, buf))
                streaming_truth.add(buf)

        marked = {
            b for b in range(num_bufs) if eng.streaming[buf_base + b]
        }
        if marked != streaming_truth:
            _fail(eng, "lane %d streaming bits %r != span sources %r"
                  % (lane, sorted(marked), sorted(streaming_truth)))

        # Hand-off writer registry: keys agree, values are live spans
        # or fully settled leftovers awaiting replacement.
        for key, rec in eng.chain_writers[lane].items():
            if rec[B._R_WKEY] != key:
                _fail(eng, "lane %d chain writer under %d reports %d"
                      % (lane, key, rec[B._R_WKEY]))

        # Flit conservation: every created flit is queued at a NIC,
        # buffered in a router (occ), unsent on a NIC-sourced span
        # (+1 head flit written at injection for busy NIC_MID NICs),
        # or delivered to a sink.
        queued_pkts = 0
        for node, nic in eng.lane_nics[lane].items():
            scan = sum(len(q) for q in nic.queues.values())
            if nic.queued != scan:
                _fail(eng, "lane %d NIC %d queued=%d but queues hold %d"
                      % (lane, node, nic.queued, scan))
            live = eng.nic_live[base + node]
            truth = {fid for fid, q in nic.queues.items() if q}
            if set(live) != truth:
                _fail(eng, "lane %d NIC %d live flows %r != %r"
                      % (lane, node, sorted(live), sorted(truth)))
            queued_pkts += nic.queued
        created = eng.lane_stats[lane].created_total * fpp
        delivered = sum(
            s.flits_received for s in eng.lane_sinks[lane].values()
        )
        buffered = sum(eng.occ[base:base + nn])
        accounted = (
            queued_pkts * fpp + buffered + delivered + nic_remaining
        )
        if created != accounted:
            _fail(eng,
                  "lane %d flit conservation: created=%d but queued=%d "
                  "buffered=%d in-flight=%d delivered=%d"
                  % (lane, created, queued_pkts * fpp, buffered,
                     nic_remaining, delivered))

        # Occupancy / active-set equality against the columns.
        active_cnt = 0
        ports_cnt = 0
        for node in range(nn):
            ln = base + node
            occ = eng.occ[ln]
            if occ < 0:
                _fail(eng, "lane %d node %d occupancy %d < 0"
                      % (lane, node, occ))
            has_work = bool(occ) or bool(eng.reservations[ln])
            if bool(eng.active[ln]) != has_work:
                _fail(eng,
                      "lane %d node %d active=%d but occ=%d "
                      "reservations=%d" % (lane, node, eng.active[ln],
                                           occ, len(eng.reservations[ln])))
            if eng.active[ln]:
                active_cnt += 1
                ports_cnt += eng.n_ports[node]
            for out, rec in eng.reservations[ln].items():
                if res_truth.get((ln, out)) is not rec:
                    _fail(eng,
                          "lane %d node %d output %d reserved by a span "
                          "not in the stream list" % (lane, node, out))
            for ent in eng.head_slots[ln]:
                if len(ent) != 9 or ent[0] is None:
                    _fail(eng,
                          "lane %d node %d holds a granted/misshapen "
                          "head entry %r" % (lane, node, ent))
        if len(res_truth) != sum(
            len(eng.reservations[base + n]) for n in range(nn)
        ):
            _fail(eng, "lane %d has spans holding unregistered output "
                       "reservations" % lane)
        if (eng.active_cnt[lane] != active_cnt
                or eng.ports_cnt[lane] != ports_cnt):
            _fail(eng,
                  "lane %d clock accumulators active=%d ports=%d but "
                  "columns hold %d/%d" % (lane, eng.active_cnt[lane],
                                          eng.ports_cnt[lane],
                                          active_cnt, ports_cnt))

        # Next-wake caches: every armed wake must be a future cycle
        # within the ring horizon with a live ring entry, and any head
        # grantable at ``now`` must have a wake armed no later than now
        # (the calendar-queue-lite invariant: no counting scan missed).
        for node in range(nn):
            ln = base + node
            for label, col, phase in (
                ("sa", eng.sa_next, B._P_SA),
                ("nic", eng.nic_next, B._P_NIC),
            ):
                wake = col[ln]
                if wake < 0:
                    continue
                if wake < now or wake - now >= B._RING:
                    _fail(eng,
                          "lane %d node %d %s_next=%d outside [%d, %d)"
                          % (lane, node, label, wake, now,
                             now + B._RING))
                if ln not in eng.ring[wake & B._MASK][phase]:
                    _fail(eng,
                          "lane %d node %d %s_next=%d has no ring entry"
                          % (lane, node, label, wake))
            res_d = eng.reservations[ln]
            for ent in eng.head_slots[ln]:
                if ent[1] > now or ent[7] is None:
                    continue
                if eng.streaming[buf_base + ent[4]] or ent[2] in res_d:
                    continue
                fq = ent[5]
                pend = fq._pending
                if not fq._ready and not (pend and pend[0][0] <= now):
                    continue
                if eng.sa_next[ln] < 0 or eng.sa_next[ln] > now:
                    _fail(eng,
                          "lane %d node %d head %r grantable at %d but "
                          "sa_next=%d (missed scan)"
                          % (lane, node, ent[0], now, eng.sa_next[ln]))


def check_chain_graph(net: object) -> None:
    """Validate feeder links: strictly backwards-pointing, acyclic."""
    chains = getattr(net, "_chains", None)
    if not chains:
        return
    for cid, chain in chains.items():
        if chain.cid != cid:
            _fail(net, "chain registered as %d reports cid %d" % (cid, chain.cid))
        seen = {chain.cid}
        node = chain
        while True:
            feeder = getattr(node, "feeder", None)
            if feeder is None:
                break
            if feeder.cid >= node.cid:
                _fail(
                    net,
                    "chain %d has feeder %d: feeder links must point at "
                    "strictly earlier chains (producers before "
                    "consumers)" % (node.cid, feeder.cid),
                )
            if feeder.cid in seen:
                _fail(net, "feeder cycle through chain %d" % feeder.cid)
            seen.add(feeder.cid)
            node = feeder
    for key, writer in getattr(net, "_chain_writers", {}).items():
        if getattr(writer, "writer_key", key) != key:
            _fail(
                net,
                "chain writer registered under %r reports key %r"
                % (key, writer.writer_key),
            )
