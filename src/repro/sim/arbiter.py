"""Arbiters for switch allocation.

The paper's stage-2 "Switch Allocation" arbitrates buffered flits for
crossbar output ports.  We provide a round-robin arbiter (the common
hardware choice and what the generated RTL implements) plus a fixed-priority
arbiter for tests, behind one interface.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence


class Arbiter:
    """Interface: pick one winner among requesters."""

    def grant(self, requesters: Sequence[Hashable]) -> Optional[Hashable]:
        raise NotImplementedError


class FixedPriorityArbiter(Arbiter):
    """Always grants the lowest-index requester (unfair; test baseline)."""

    def grant(self, requesters: Sequence[Hashable]) -> Optional[Hashable]:
        if not requesters:
            return None
        return requesters[0]


class RoundRobinArbiter(Arbiter):
    """Round-robin over a fixed client list.

    Clients are registered up front (e.g. the (input port, VC) pairs of a
    router); ``grant`` picks the first requester after the previous winner,
    giving each client a fair share under persistent contention — which is
    what serialises the red and blue flows of Fig 7 at router 9's East
    output.
    """

    def __init__(self, clients: Sequence[Hashable]):
        if not clients:
            raise ValueError("round-robin arbiter needs at least one client")
        self._clients: List[Hashable] = list(clients)
        self._index = {c: i for i, c in enumerate(self._clients)}
        if len(self._index) != len(self._clients):
            raise ValueError("duplicate arbiter clients")
        self._last = len(self._clients) - 1

    @property
    def clients(self) -> List[Hashable]:
        return list(self._clients)

    def grant(self, requesters: Sequence[Hashable]) -> Optional[Hashable]:
        if not requesters:
            return None
        requesting = set(requesters)
        unknown = requesting.difference(self._index)
        if unknown:
            raise ValueError("unregistered requesters: %r" % sorted(map(str, unknown)))
        n = len(self._clients)
        for offset in range(1, n + 1):
            candidate = self._clients[(self._last + offset) % n]
            if candidate in requesting:
                self._last = self._index[candidate]
                return candidate
        return None

    def grant_sole(self, requester: Hashable) -> Hashable:
        """Grant a lone requester: same pointer update and result as
        ``grant([requester])``, without the scan (hot-path helper)."""
        self._last = self._index[requester]
        return requester
