"""Mesh topology: node coordinates, ports, and neighbour arithmetic.

The paper numbers tiles row-major with node 0 at the bottom-left (Fig 1):

    12 13 14 15
     8  9 10 11
     4  5  6  7
     0  1  2  3

Router ports follow the paper's order East, South, West, North, Core
(source-route bits at the source router "correspond to East, South, West and
North output ports").  One hop equals ``mm_per_hop`` millimetres (1 mm by
default, from place-and-route of a Freescale e200z7 core in 45 nm).
"""

from __future__ import annotations

import enum
from typing import Iterator, List, Optional, Tuple

#: Physical tile pitch assumed by the paper (1 hop = 1 mm).
MM_PER_HOP = 1.0


class Port(enum.IntEnum):
    """Router port directions, in the paper's E/S/W/N/Core order."""

    EAST = 0
    SOUTH = 1
    WEST = 2
    NORTH = 3
    CORE = 4

    @property
    def is_cardinal(self) -> bool:
        """True for mesh directions, False for the local core port."""
        return self is not Port.CORE

    @property
    def opposite(self) -> "Port":
        """The port a flit leaving this direction arrives on."""
        if self is Port.CORE:
            return Port.CORE
        return _OPPOSITE[self]


_OPPOSITE = {
    Port.EAST: Port.WEST,
    Port.WEST: Port.EAST,
    Port.NORTH: Port.SOUTH,
    Port.SOUTH: Port.NORTH,
}

#: Unit (dx, dy) for each cardinal direction; north increases y.
DIRECTION_VECTORS = {
    Port.EAST: (1, 0),
    Port.WEST: (-1, 0),
    Port.NORTH: (0, 1),
    Port.SOUTH: (0, -1),
}

CARDINALS = (Port.EAST, Port.SOUTH, Port.WEST, Port.NORTH)
ALL_PORTS = tuple(Port)


class Mesh:
    """A width x height 2D mesh with the paper's node numbering."""

    def __init__(self, width: int, height: int):
        if width < 1 or height < 1:
            raise ValueError("mesh dimensions must be positive")
        self.width = width
        self.height = height

    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    def coords(self, node: int) -> Tuple[int, int]:
        """Return (x, y) of a node id; node 0 is at (0, 0), bottom-left."""
        self._check_node(node)
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        """Return the node id at coordinates (x, y)."""
        if not self.in_bounds(x, y):
            raise ValueError("(%d, %d) outside %dx%d mesh" % (x, y, self.width, self.height))
        return y * self.width + x

    def in_bounds(self, x: int, y: int) -> bool:
        return 0 <= x < self.width and 0 <= y < self.height

    def neighbor(self, node: int, direction: Port) -> Optional[int]:
        """Neighbour node id in ``direction``, or None at a mesh edge."""
        if direction is Port.CORE:
            return None
        x, y = self.coords(node)
        dx, dy = DIRECTION_VECTORS[direction]
        nx, ny = x + dx, y + dy
        if not self.in_bounds(nx, ny):
            return None
        return self.node_at(nx, ny)

    def neighbors(self, node: int) -> List[Tuple[Port, int]]:
        """All (direction, neighbour) pairs of a node."""
        result = []
        for direction in CARDINALS:
            other = self.neighbor(node, direction)
            if other is not None:
                result.append((direction, other))
        return result

    def degree(self, node: int) -> int:
        """Number of mesh neighbours (2 at corners, 4 in the middle)."""
        return len(self.neighbors(node))

    def direction_between(self, src: int, dst: int) -> Port:
        """Direction of the single hop from ``src`` to adjacent ``dst``."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        step = (dx - sx, dy - sy)
        for direction, vec in DIRECTION_VECTORS.items():
            if vec == step:
                return direction
        raise ValueError("nodes %d and %d are not adjacent" % (src, dst))

    def hop_distance(self, src: int, dst: int) -> int:
        """Manhattan hop count between two nodes."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(dx - sx) + abs(dy - sy)

    def distance_mm(self, src: int, dst: int, mm_per_hop: float = MM_PER_HOP) -> float:
        """Physical Manhattan distance between two tiles."""
        return self.hop_distance(src, dst) * mm_per_hop

    def nodes(self) -> Iterator[int]:
        return iter(range(self.num_nodes))

    def links(self) -> Iterator[Tuple[int, int]]:
        """All directed router-to-router links (u, v)."""
        for node in self.nodes():
            for _direction, other in self.neighbors(node):
                yield node, other

    def center_nodes(self) -> List[int]:
        """Nodes with maximum degree, ordered by closeness to the centre.

        The modified NMAP of §VI maps the most communication-hungry task
        "to the core with the most number of neighbors (i.e. middle of the
        mesh)".
        """
        best = max(self.degree(n) for n in self.nodes())
        cx = (self.width - 1) / 2.0
        cy = (self.height - 1) / 2.0

        def centrality(node: int) -> Tuple[float, int]:
            x, y = self.coords(node)
            return (abs(x - cx) + abs(y - cy), node)

        candidates = [n for n in self.nodes() if self.degree(n) == best]
        return sorted(candidates, key=centrality)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(
                "node %d outside %dx%d mesh" % (node, self.width, self.height)
            )

    def __repr__(self) -> str:
        return "Mesh(%dx%d)" % (self.width, self.height)
