"""Saturation sweep: latency vs offered load, fanned across CPU cores.

Sweeps a synthetic traffic pattern (default: uniform random on an 8x8
mesh) from light load to past the saturation knee, running every
(design, rate, seed) grid point in a separate worker process, then prints
the latency-vs-load curve.  Saturated points — where the run could not
drain its measured packets — are flagged with '*'.

This is the workload class the active-set kernel was built for: most grid
points leave most of the mesh idle, so skipping gated routers pays for
the whole sweep.

Run:  python examples/saturation_sweep.py [PATTERN] [WIDTH]
"""

import sys

from repro.config import NocConfig
from repro.eval.report import render_table
from repro.eval.sweeps import (
    format_sweep_rows,
    run_pattern_sweep,
    saturation_load,
)
from repro.sim.patterns import PATTERNS


def main() -> None:
    pattern = sys.argv[1] if len(sys.argv) > 1 else "uniform"
    width = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    if pattern not in PATTERNS:
        raise SystemExit(
            "unknown pattern %r; choose from %s" % (pattern, PATTERNS)
        )
    cfg = NocConfig(width=width, height=width)
    rates = (0.005, 0.01, 0.02, 0.05, 0.1)
    rows = run_pattern_sweep(
        pattern=pattern,
        designs=("mesh", "smart"),
        rates=rates,
        seeds=(1, 2),
        cfg=cfg,
        measure_cycles=4000,
        drain_limit=20000,
    )
    print(render_table(
        format_sweep_rows(rows),
        title="%s on %dx%d: latency vs injection rate (packets/cycle/node)"
        % (pattern, width, width),
    ))
    for design in ("mesh", "smart"):
        knee = saturation_load(rows, design)
        print("%-6s %s" % (
            design,
            "saturates at %g packets/cycle/node" % knee
            if knee is not None else "never saturates in this sweep",
        ))


if __name__ == "__main__":
    main()
