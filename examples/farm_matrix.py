"""Farm-driven latency matrix: every app and two patterns x three kernels.

The first real workload for `repro.eval.farm` (docs/farm.md): one farm
queue per (workload, mesh size, kernel) spec —

* all 8 SoC apps on their native 4x4 mesh,
* uniform and transpose on 8x8 and 16x16,
* each under all three simulation kernels (legacy / active / event),

worked to completion, merged, and compacted under ``results/farm/``.
Because the kernels are bit-identical by contract (docs/analysis.md),
the three per-kernel queues of one (workload, size) cell must merge to
the *same rows*; this script checks exactly that, turning the matrix
into a published cross-kernel equivalence artifact at sizes the tier-1
suites never touch (16x16).

Writes ``results/farm_matrix.md`` plus per-spec ``merged.json`` /
``merged.md`` inside each queue directory.  Re-running is incremental:
finished points are never re-run (that is the farm's whole job).

Environment:
    SMART_FARM_MATRIX_PROCS   worker processes per queue (default 1)
"""

import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "src")
)

from repro.config import NocConfig  # noqa: E402
from repro.eval.farm import (  # noqa: E402
    enumerate_farm,
    merge_farm,
    work_many,
    work_on,
)

KERNELS = ("legacy", "active", "event")
DESIGNS = ("mesh", "smart")
PROCS = int(os.environ.get("SMART_FARM_MATRIX_PROCS", "1"))

APPS = ("H264", "MMS_DEC", "MMS_ENC", "MMS_MP3", "MWD", "VOPD", "WLAN", "PIP")

#: (workload, cfg, loads, measure_cycles) — one matrix cell per entry,
#: expanded over KERNELS below.  Loads sit below each mesh's saturation
#: knee so the committed latencies are stable operating points; the
#: measure windows shrink with mesh size to keep the 16x16 legacy
#: points (full per-cycle scans of 256 routers) affordable.
CELLS = [
    (app, None, (1.0, 4.0), 4000) for app in APPS
] + [
    ("uniform", NocConfig(width=8, height=8), (0.01, 0.02), 2000),
    ("transpose", NocConfig(width=8, height=8), (0.01, 0.02), 2000),
    ("uniform", NocConfig(width=16, height=16), (0.005,), 1000),
    ("transpose", NocConfig(width=16, height=16), (0.005,), 1000),
]


def run_cell(workload, cfg, loads, measure):
    """Farm every kernel's queue for one cell; return its summary row."""
    size = "%dx%d" % ((cfg.width, cfg.height) if cfg else (4, 4))
    per_kernel = {}
    for kernel in KERNELS:
        spec = enumerate_farm(
            workload, designs=DESIGNS, loads=loads, seeds=(1,), cfg=cfg,
            kernel=kernel, measure_cycles=measure,
        )
        if PROCS > 1:
            work_many(spec, PROCS)
        else:
            work_on(spec)
        result = merge_farm(spec, compact=True)
        assert result.complete, "farm %s did not complete" % spec.spec_hash
        per_kernel[kernel] = (spec, result)
        print("  %-10s %-6s %-7s -> farm %s (%d points)"
              % (workload, size, kernel, spec.spec_hash,
                 result.total_points))

    # Cross-kernel bit-identity at the merged-row level: compare the
    # raw JSON rows (minus their spec-scoped point hashes).
    def stream_rows(result):
        rows = []
        for line in open(result.stream_path):
            data = json.loads(line)
            if "sweep_spec" in data:
                continue
            data.pop("point")
            rows.append(data)
        return rows

    reference = stream_rows(per_kernel[KERNELS[0]][1])
    identical = all(
        stream_rows(result) == reference
        for _, result in per_kernel.values()
    )

    aggregated = json.load(open(per_kernel["active"][1].json_path))["rows"]
    return {
        "workload": workload,
        "size": size,
        "loads": loads,
        "points": len(per_kernel["active"][0].points()),
        "hashes": {k: spec.spec_hash for k, (spec, _) in per_kernel.items()},
        "identical": identical,
        "rows": aggregated,
    }


def matrix_markdown(cells):
    """The committed ``results/farm_matrix.md`` summary."""
    lines = [
        "# Farm-driven latency matrix (all apps + uniform/transpose, "
        "3 kernels)",
        "",
        "Every cell below is three farm queues (one per kernel: legacy, "
        "active, event) under `results/farm/<spec_hash>/`, enumerated, "
        "worked and merged by `examples/farm_matrix.py` via "
        "`repro.eval.farm` (docs/farm.md).  `kernels bit-identical` "
        "compares the three merged streams row-for-row — the kernel "
        "equivalence contract holds at every size here, including "
        "16x16 meshes the tier-1 suites never run.  Mean head latency "
        "in cycles on the active kernel; apps are driven by bandwidth "
        "scale, patterns by injection rate (packets/cycle/node).",
        "",
        "| workload | size | load | mesh | smart | kernels bit-identical "
        "| farm specs (legacy/active/event) |",
        "|---|---|---:|---:|---:|---|---|",
    ]
    for cell in cells:
        specs = "/".join(cell["hashes"][k] for k in KERNELS)
        for index, row in enumerate(cell["rows"]):
            lines.append(
                "| %s | %s | %g | %.2f | %.2f | %s | %s |" % (
                    cell["workload"] if index == 0 else "",
                    cell["size"] if index == 0 else "",
                    row["load"],
                    row.get("mesh", float("nan")),
                    row.get("smart", float("nan")),
                    ("yes" if cell["identical"] else "**NO**")
                    if index == 0 else "",
                    "`%s`" % specs if index == 0 else "",
                )
            )
    total_queues = len(cells) * len(KERNELS)
    total_points = sum(cell["points"] for cell in cells) * len(KERNELS)
    lines += [
        "",
        "%d farm queues, %d simulated grid points in total; each queue "
        "directory keeps its `spec.json`, `merged.jsonl` (a resumable "
        "sweep stream), `merged.json` and `merged.md`."
        % (total_queues, total_points),
        "",
    ]
    return "\n".join(lines)


def main():
    cells = []
    for workload, cfg, loads, measure in CELLS:
        cells.append(run_cell(workload, cfg, loads, measure))
    bad = [c for c in cells if not c["identical"]]
    out = os.path.join("results", "farm_matrix.md")
    with open(out, "w") as fh:
        fh.write(matrix_markdown(cells))
    print("wrote %s (%d cells, %d queues)"
          % (out, len(cells), len(cells) * len(KERNELS)))
    if bad:
        raise SystemExit(
            "cross-kernel mismatch in: %s"
            % ", ".join("%s %s" % (c["workload"], c["size"]) for c in bad)
        )


if __name__ == "__main__":
    main()
