"""Minimal vs non-minimal route selection: when do free detours pay?

On a SMART bypass chain extra hops are free (they ride the same
single-cycle traversal), so a detour around a contended link trades
zero latency for the 3-cycle stop the contention would have cost —
the §VI future-work direction the ``routing="nonminimal"`` workload
param implements (``repro.mapping.nonminimal``, plumbed end-to-end in
PR 4).  This study quantifies it: the transpose permutation on an 8x8
mesh — the classic adversary for turn-model minimal routing, since
every flow fights over the same diagonal band — is swept load point by
load point with minimal and with bounded-detour route selection, on
the same SMART design, seeds and simulation windows.

Both sweeps run the full workload pipeline (placed demands ->
route selection -> SMART presets) under ``kernel="event"`` and stream
their grid points to ``results/sweep_nonminimal_8x8_<routing>.jsonl``
(a rerun resumes; delete the streams to start over).  The merged
latency table is committed as ``results/sweep_nonminimal_8x8.md``.

Run:  python examples/nonminimal_study.py
"""

import os
import sys

from repro.config import NocConfig
from repro.eval.report import render_table
from repro.eval.sweeps import run_workload_sweep, saturation_load
from repro.workloads import WorkloadSpec

PATTERN = "transpose"
ROUTINGS = ("minimal", "nonminimal")
RATES = (0.005, 0.01, 0.02, 0.035, 0.05, 0.08)
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


def run_study(
    loads=RATES,
    seeds=(1, 2),
    cfg=None,
    measure_cycles=4000,
    drain_limit=20000,
    stream_dir=None,
    processes=None,
):
    """Sweep the contended pattern under both routings; merge per load.

    Returns one row per load with the minimal/nonminimal mean head
    latencies, their saturation flags, and the latency delta in percent
    (negative = detours helped).
    """
    cfg = cfg or NocConfig(width=8, height=8)
    by_routing = {}
    for routing in ROUTINGS:
        stream_path = (
            os.path.join(
                stream_dir, "sweep_nonminimal_8x8_%s.jsonl" % routing
            )
            if stream_dir
            else None
        )
        by_routing[routing] = run_workload_sweep(
            WorkloadSpec.of(PATTERN, routing=routing),
            designs=("smart",),
            loads=loads,
            seeds=seeds,
            cfg=cfg,
            processes=processes,
            kernel="event",
            measure_cycles=measure_cycles,
            drain_limit=drain_limit,
            stream_path=stream_path,
            resume=stream_path is not None,
        )
    merged = []
    for row_min, row_non in zip(by_routing["minimal"], by_routing["nonminimal"]):
        assert row_min["load"] == row_non["load"]
        minimal = row_min["smart"]
        nonminimal = row_non["smart"]
        delta = (
            100.0 * (nonminimal - minimal) / minimal
            if minimal == minimal and minimal > 0 and nonminimal == nonminimal
            else float("nan")
        )
        merged.append({
            "load": row_min["load"],
            "minimal": minimal,
            "minimal_p95": row_min["smart_p95"],
            "minimal_saturated": row_min["smart_saturated"],
            "nonminimal": nonminimal,
            "nonminimal_p95": row_non["smart_p95"],
            "nonminimal_saturated": row_non["smart_saturated"],
            "delta_pct": delta,
        })
    merged_meta = {
        routing: saturation_load(by_routing[routing], "smart")
        for routing in ROUTINGS
    }
    return merged, merged_meta


def format_rows(rows):
    out = []
    for row in rows:
        out.append({
            "load": "%g" % row["load"],
            "minimal": "%.2f%s" % (
                row["minimal"], "*" if row["minimal_saturated"] else ""
            ),
            "minimal_p95": "%.1f" % row["minimal_p95"],
            "nonminimal": "%.2f%s" % (
                row["nonminimal"], "*" if row["nonminimal_saturated"] else ""
            ),
            "nonminimal_p95": "%.1f" % row["nonminimal_p95"],
            "delta_pct": "%+.1f%%" % row["delta_pct"],
        })
    return out


def markdown_table(rows) -> str:
    headers = list(rows[0].keys())
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---:" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(row[h]) for h in headers) + " |")
    return "\n".join(lines) + "\n"


def main() -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    rows, knees = run_study(stream_dir=RESULTS_DIR)
    title = (
        "%s 8x8 on SMART: minimal vs nonminimal route selection "
        "(mean head latency, cycles)" % PATTERN
    )
    pretty = format_rows(rows)
    print(render_table(pretty, title=title))
    knee_lines = []
    for routing in ROUTINGS:
        knee = knees[routing]
        line = "%-10s %s" % (
            routing,
            "saturates at %g packets/cycle/node" % knee
            if knee is not None else "never saturates in this sweep",
        )
        knee_lines.append(line)
        print(line)
    out = os.path.join(RESULTS_DIR, "sweep_nonminimal_8x8.md")
    with open(out, "w") as fh:
        fh.write("# %s\n\n" % title)
        fh.write(
            "Load in packets/cycle/node; `*` marks saturated points "
            "(failed to drain within the limit).  `delta_pct` is the "
            "nonminimal latency relative to minimal (negative = bounded "
            "detours helped).  Two seeds per grid point, pooled by "
            "delivered-packet count; `kernel=\"event\"`.  Generated by "
            "`examples/nonminimal_study.py`.\n\n"
        )
        fh.write(markdown_table(pretty))
        fh.write("\n" + "\n".join(knee_lines) + "\n")
    print("wrote %s" % out)


if __name__ == "__main__":
    sys.exit(main())
