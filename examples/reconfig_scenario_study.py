"""Costed reconfiguration scenarios: Fig 1's sequence on a live clock.

``examples/reconfigure_three_apps.py`` compiles the SS V store programs
statically; this study *runs* the sequence.  One fabric hosts WLAN, then
H264, then VOPD (``repro.eval.reconfig.fig1_scenario``): between phases
the network drains, the changed preset registers are rewritten (one
store instruction per register, ``diff_program``), and the store bill
lands on the same simulated clock as the traffic — so the report can
say what fraction of wall-clock cycles reconfiguration actually costs.

Three designs side by side:

* ``smart`` — the paper's NoC, retargeted between phases by rewriting
  only the registers that change (incremental switch).
* ``mesh`` — the baseline router fabric; its per-phase configs also
  reprogram, at the same store granularity.
* ``dedicated`` — per-app dedicated wires: nothing to reprogram, the
  zero-cost (but zero-flexibility) reference.

Each scenario streams per-phase rows (``results/scenario_fig1_<design>
.jsonl``) under a content-hashed header, so the committed streams adopt
into import-only farm queues (``repro farm import``) and re-aggregate
bit-identically.  The phase rows themselves are pinned bit-identical
across all three kernels by the fuzz suite
(``tests/sim/test_kernel_fuzz.py::test_scenario_phases_bit_identical``).

Writes ``results/reconfig_scenarios.md``.

Run:  python examples/reconfig_scenario_study.py

Environment:
    SMART_SCENARIO_SEEDS     replications of the sequence (default 3)
    SMART_SCENARIO_MEASURE   measured cycles per phase (default 4000)
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "src")
)

from repro.config import NocConfig  # noqa: E402
from repro.core.reconfiguration import (  # noqa: E402
    compile_program,
    diff_program,
)
from repro.eval.designs import build_design  # noqa: E402
from repro.eval.reconfig import (  # noqa: E402
    fig1_scenario,
    run_scenario_stream,
    scenario_phase_table,
)
from repro.workloads import build_seed_for, build_workload  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")
SEEDS = tuple(range(1, int(os.environ.get("SMART_SCENARIO_SEEDS", "3")) + 1))
MEASURE = int(os.environ.get("SMART_SCENARIO_MEASURE", "4000"))
DESIGNS = ("smart", "mesh", "dedicated")


def run_design(design):
    spec = fig1_scenario(
        design=design, measure_cycles=MEASURE, warmup_cycles=500
    )
    stream = os.path.join(
        RESULTS_DIR, "scenario_fig1_%s.jsonl" % design
    )
    raw = run_scenario_stream(
        spec, seeds=SEEDS, stream_path=stream, resume=True
    )
    print("%s: %d phase rows -> %s" % (design, len(raw), stream))
    return spec, scenario_phase_table(spec, raw)


def design_section(design, table):
    lines = [
        "## %s" % design,
        "",
        "| phase | app | mean latency | p99 | stores | reconfig cyc "
        "| clock at phase end | drained |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for row in table:
        lines.append(
            "| %d | %s | %.2f | %.0f | %d | %d | %.0f | %s |"
            % (row["phase"], row["app"], row["mean_latency"],
               row["p99_latency"], row["reconfig_stores"],
               row["reconfig_cycles"], row["clock_cycles"],
               "yes" if row["drained"] else "no")
        )
    total_reconfig = sum(row["reconfig_cycles"] for row in table)
    final_clock = table[-1]["clock_cycles"]
    lines.append("")
    lines.append(
        "%d reconfiguration cycles over %.0f total — %.3f%% of the "
        "sequence's clock.\n"
        % (total_reconfig, final_clock,
           100.0 * total_reconfig / final_clock if final_clock else 0.0)
    )
    return "\n".join(lines)


def diff_vs_full_section():
    """Incremental vs from-scratch store bill on the smart fabric."""
    spec = fig1_scenario()
    cfg = NocConfig()
    programs = []
    for phase in spec.phases:
        built = build_workload(
            phase.workload, cfg,
            seed=build_seed_for(phase.workload, SEEDS[0]),
        )
        instance = build_design("smart", cfg, built.flows)
        programs.append(
            compile_program(
                instance.presets, app_name=phase.workload.name,
                base_addr=spec.base_addr,
            )
        )
    lines = [
        "## Incremental vs from-scratch programming (smart)",
        "",
        "| switch | full program stores | diff stores | saved |",
        "|---|---|---|---|",
    ]
    total_full = total_diff = 0
    for old, new in zip(programs, programs[1:]):
        delta = diff_program(old, new)
        total_full += new.cost_instructions
        total_diff += delta.cost_instructions
        lines.append(
            "| %s -> %s | %d | %d | %d |"
            % (old.app_name, new.app_name, new.cost_instructions,
               delta.cost_instructions, new.cost_instructions
               - delta.cost_instructions)
        )
    lines.append("")
    lines.append(
        "Switching by diff rewrites %d of %d registers (%.0f%%): apps\n"
        "that share routed pairs keep those routers' presets intact,\n"
        "so a hot switch is cheaper than a cold boot even before the\n"
        "bill is amortized over a phase's traffic.\n"
        % (total_diff, total_full, 100.0 * total_diff / total_full)
    )
    return "\n".join(lines)


def main():
    sections = []
    for design in DESIGNS:
        _spec, table = run_design(design)
        sections.append(design_section(design, table))
    sections.append(diff_vs_full_section())
    report = os.path.join(RESULTS_DIR, "reconfig_scenarios.md")
    with open(report, "w") as fh:
        fh.write(
            "# Costed reconfiguration scenarios: Fig 1 on a live clock\n"
            "\n"
            "WLAN -> H264 -> VOPD time-multiplexed on one 4x4 fabric\n"
            "(`repro.eval.reconfig.fig1_scenario`), %d seed(s), %d\n"
            "measured cycles per phase.  Between phases the network\n"
            "drains and only the *changed* 64-bit preset registers are\n"
            "rewritten (SS V: one store instruction each,\n"
            "`diff_program`); phase 0 pays the full program.  The store\n"
            "bill lands on the same simulated clock as warmup,\n"
            "measurement and drain, so the per-design totals below are\n"
            "end-to-end.  `dedicated` has no preset registers — its\n"
            "reconfiguration is free by construction.\n"
            "\n"
            "Latencies are mean/p99 head latency in cycles, seeds\n"
            "pooled.  Regenerate with\n"
            "`python examples/reconfig_scenario_study.py`; the\n"
            "`results/scenario_fig1_<design>.jsonl` streams re-import\n"
            "via `repro farm import` against\n"
            "`repro.eval.reconfig.enumerate_scenario_farm` queues.\n"
            "\n"
            % (len(SEEDS), MEASURE)
        )
        fh.write("\n".join(sections))
    print("wrote %s" % report)


if __name__ == "__main__":
    main()
