"""Fig 7 walkthrough: watch four flows traverse the SMART NoC.

Green and purple never conflict and fly source NIC to destination NIC in a
single cycle.  Red and blue share the link between routers 9 and 10, so
they are latched at routers 9 and 10 to arbitrate, arriving with the
figure's cumulative traversal times 1, 4, 7.

Run:  python examples/four_flows_fig7.py
"""

from repro import NocConfig
from repro.core.noc_builder import build_smart_noc
from repro.eval.report import render_table
from repro.eval.scenarios import fig7_flows
from repro.sim.segments import BufferEnd
from repro.sim.traffic import ScriptedTraffic


def main() -> None:
    cfg = NocConfig()
    flows = fig7_flows()
    noc = build_smart_noc(
        cfg, flows, traffic=ScriptedTraffic([(1, f.flow_id) for f in flows])
    )
    network = noc.network
    network.stats.measuring = True
    network.run_cycles(100)

    print("Preset traversal segments per flow:")
    for flow in flows:
        parts = []
        for segment in network.flow_segments(flow):
            hops = "%d hop%s" % (segment.hops, "s" if segment.hops != 1 else "")
            if isinstance(segment.end, BufferEnd):
                parts.append("--%s--> [stop @ router %d]" % (hops, segment.end.node))
            else:
                parts.append("--%s--> NIC%d" % (hops, segment.end.node))
        print("  %-7s NIC%-2d %s" % (flow.name, flow.src, " ".join(parts)))

    rows = []
    for packet in sorted(
        network.stats.measured_delivered, key=lambda p: p.flow_id
    ):
        flow = flows[packet.flow_id]
        rows.append(
            {
                "flow": flow.name,
                "injected": packet.inject_cycle,
                "head arrives": packet.head_arrive_cycle,
                "head latency": packet.head_latency,
                "tail latency": packet.packet_latency,
            }
        )
    print()
    print(render_table(rows, title="Fig 7 packet timings (cycles)"))
    print(
        "\nThe paper's annotations — 1 for the clean flows; 1, 4, 7 for the "
        "stopped flows — fall out of the 3-stage stop cost (BW, SA, ST+link)."
    )


if __name__ == "__main__":
    main()
