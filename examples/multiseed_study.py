"""Farmed multi-seed saturation study: 8 seeds, 95% confidence bands.

Two 8x8 saturation curves — uniform random (seed-sensitive destination
draws, so every replication sweeps a *different* flow set) and
transpose (one deterministic flow set, replications differ only in
injection timing) — each run at 8 traffic seeds per grid point through
``repro.eval.farm`` queues:

* ``farm enumerate`` content-addresses one queue per pattern (spec hash
  shared with sweep streams, so an interrupted study resumes for free
  and a rerun never repeats finished points);
* one or more cooperating workers drain the queue
  (``SMART_MULTISEED_PROCS`` real processes; default 1);
* ``farm merge`` folds the shards into the canonical merged stream and
  aggregated rows — whose ``<design>_ci95`` columns (Student-t 95%
  half-width over the per-seed mean head latencies,
  ``repro.sim.stats.ci95_halfwidth``) are what this study is about.

The committed report (``results/sweep_multiseed_8x8.md``) prints each
curve as ``mean ± half-width``: with 8 replications the uniform
pattern's bands stay wide near the knee (the flow sets themselves
differ), while transpose's collapse — per-seed spread there is pure
injection-timing noise.  Saturated points (any seed failing to drain)
are flagged ``*`` and excluded from the knee comparison.

Grid points use the event kernel — these are exactly the half-idle
replications the batched lockstep engine (`repro.sim.batch`) was built
for, and the farm's single-seed points remain bit-identical to the
batched sweep path (``repro sweep --seeds 8``) by the lockstep
equivalence contract.

Run:  python examples/multiseed_study.py

Environment:
    SMART_MULTISEED_PROCS   worker processes per queue (default 1)
"""

import math
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "src")
)

from repro.config import NocConfig  # noqa: E402
from repro.eval.farm import (  # noqa: E402
    enumerate_farm,
    merge_farm,
    work_many,
    work_on,
)
from repro.eval.sweeps import saturation_load  # noqa: E402

PATTERNS = ("uniform", "transpose")
DESIGNS = ("mesh", "smart", "dedicated")
RATES = (0.005, 0.01, 0.02, 0.05, 0.1)
SEEDS = tuple(range(1, 9))
PROCS = int(os.environ.get("SMART_MULTISEED_PROCS", "1"))
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")
REPORT = os.path.join(RESULTS_DIR, "sweep_multiseed_8x8.md")


def run_pattern(pattern):
    """Farm one pattern's queue to completion; return aggregated rows."""
    spec = enumerate_farm(
        pattern,
        designs=DESIGNS,
        loads=RATES,
        seeds=SEEDS,
        cfg=NocConfig(width=8, height=8),
        kernel="event",
        measure_cycles=2000,
        drain_limit=10000,
    )
    total = len(spec.points())
    print("%s: farm %s (%d points)" % (pattern, spec.spec_hash, total))

    def on_point(point, row):
        print("  %-10s rate=%-7g seed=%d done"
              % (point.design, point.load, point.seed))

    if PROCS > 1:
        work_many(spec, PROCS)
    else:
        work_on(spec, on_point=on_point)
    result = merge_farm(spec, compact=True)
    assert result.complete, (
        "farm %s incomplete: %d points missing"
        % (spec.spec_hash, len(result.missing))
    )
    import json

    with open(result.json_path) as fh:
        return spec, json.load(fh)["rows"]


def cell(row, design):
    """``mean ± hw`` (cycles), ``*``-flagged when any seed saturated."""
    mean = row.get(design)
    if mean is None or (isinstance(mean, float) and math.isnan(mean)):
        return "n/a"
    half = row.get("%s_ci95" % design)
    flag = "*" if row.get("%s_saturated" % design) else ""
    if half is None or (isinstance(half, float) and math.isnan(half)):
        return "%.2f%s" % (mean, flag)
    return "%.2f ± %.2f%s" % (mean, half, flag)


def pattern_section(pattern, spec, rows):
    lines = [
        "## %s (farm `%s`)" % (pattern, spec.spec_hash),
        "",
        "| load | " + " | ".join(DESIGNS) + " |",
        "| ---: | " + " | ".join("---:" for _ in DESIGNS) + " |",
    ]
    for row in rows:
        lines.append(
            "| %g | " % row["load"]
            + " | ".join(cell(row, d) for d in DESIGNS) + " |"
        )
    lines.append("")
    for design in DESIGNS:
        # saturation_load expects the in-memory row schema; the JSON
        # rows carry the same keys, so it applies directly.
        knee = saturation_load(rows, design)
        lines.append(
            "- %s %s" % (
                design,
                "saturates at %g packets/cycle/node" % knee
                if knee is not None else "never saturates in this sweep",
            )
        )
    lines.append("")
    return "\n".join(lines)


def main():
    sections = []
    for pattern in PATTERNS:
        spec, rows = run_pattern(pattern)
        sections.append(pattern_section(pattern, spec, rows))
    with open(REPORT, "w") as fh:
        fh.write(
            "# Multi-seed saturation study: 8x8, 8 seeds, 95% CI bands\n"
            "\n"
            "Mean head latency in cycles, `±` the Student-t 95% "
            "confidence half-width over 8 per-seed means "
            "(`repro.sim.stats.ci95_halfwidth`); `*` marks points where "
            "any seed failed to drain.  Event kernel, 2000 measured "
            "cycles per point, farmed through `repro.eval.farm` queues "
            "(point rows are bit-identical to the lockstep-batched "
            "`repro sweep --seeds 8` path).  Uniform re-draws its flow "
            "set per seed, so its bands include placement variance; "
            "transpose's flow set is deterministic, so its bands are "
            "injection-timing noise only.  Generated by "
            "`examples/multiseed_study.py`.\n\n"
        )
        fh.write("\n".join(sections))
    print("wrote %s" % REPORT)


if __name__ == "__main__":
    main()
