"""Quickstart: run one SoC application on all three designs.

Maps the VOPD task graph onto the 4x4 mesh with the paper's modified NMAP,
then simulates the baseline Mesh, the SMART NoC and the Dedicated ideal,
reporting average packet latency and the Fig 10b power breakdown.

Run:  python examples/quickstart.py [APP]
"""

import sys

from repro import run_app
from repro.apps import app_names
from repro.eval.report import render_table


def main() -> None:
    app = sys.argv[1].upper() if len(sys.argv) > 1 else "VOPD"
    if app not in app_names():
        raise SystemExit("unknown app %r; choose from %s" % (app, app_names()))

    rows = []
    for design in ("mesh", "smart", "dedicated"):
        experiment = run_app(
            app, design, warmup_cycles=1000, measure_cycles=20000
        )
        rows.append(
            {
                "design": design,
                "avg latency (cycles)": round(experiment.mean_latency, 2),
                "p95 latency": round(experiment.result.summary.p95_head_latency, 1),
                "power (mW)": round(experiment.power.total_w * 1e3, 2),
                "packets": experiment.result.summary.count,
            }
        )
    print(render_table(rows, title="%s on the paper's three designs" % app))

    mesh_latency = rows[0]["avg latency (cycles)"]
    smart_latency = rows[1]["avg latency (cycles)"]
    print(
        "\nSMART saves %.0f%% latency vs the 3-cycle-router mesh "
        "(paper: ~60%% across the suite)."
        % (100 * (1 - smart_latency / mesh_latency))
    )


if __name__ == "__main__":
    main()
