"""Explore the SMART link design space (§III, Table I).

Regenerates Table I from the calibrated circuit models, reproduces the
fabricated-chip measurements, and sweeps the system clock frequency to
show how far one cycle reaches (HPC_max) for each link flavour.

Run:  python examples/link_design_explorer.py
"""

from repro.circuits.link_design import (
    FAB_VARIANTS,
    LOW_SWING_OPT,
    OPT_VARIANTS,
    table1,
)
from repro.circuits.signaling import chip_measurements
from repro.eval.report import render_table


def main() -> None:
    rows = [
        {
            "variant": e.variant,
            "rate (Gb/s)": e.data_rate_gbps,
            "max hops/cycle": e.max_hops,
            "fJ/b/mm": round(e.energy_fj_per_bit_mm, 1),
        }
        for e in table1()
    ]
    print(render_table(rows, title="Table I (regenerated)"))

    vlr, full = chip_measurements()
    print("\n45 nm SOI test chip, 10 mm link (measured -> model):")
    print(
        "  VLR: %.1f Gb/s max, %.2f mW (%.0f fJ/b), %.0f ps/mm"
        % (vlr["max_rate_gbps"], vlr["power_mw"], vlr["energy_fj_per_bit"],
           vlr["delay_ps_per_mm"])
    )
    print(
        "  full-swing: %.1f Gb/s max, %.2f mW (%.0f fJ/b), %.0f ps/mm"
        % (full["max_rate_gbps"], full["power_mw"], full["energy_fj_per_bit"],
           full["delay_ps_per_mm"])
    )

    sweep = []
    for freq_ghz in (1.0, 1.5, 2.0, 2.5, 3.0):
        row = {"clock (GHz)": freq_ghz}
        for variant in OPT_VARIANTS + FAB_VARIANTS:
            row[variant.name] = variant.max_hops_per_cycle(freq_ghz)
        sweep.append(row)
    print()
    print(render_table(sweep, title="HPC_max vs system clock"))
    print(
        "\nAt the paper's 2 GHz the low-swing* link reaches %d mm per cycle "
        "— the HPC_max=8 used by the SMART NoC."
        % LOW_SWING_OPT.max_hops_per_cycle(2.0)
    )


if __name__ == "__main__":
    main()
