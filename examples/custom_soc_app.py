"""Bring your own SoC: define a task graph and run the full SMART flow.

Shows the end-to-end public API on a user-defined application: task graph
-> modified NMAP placement -> turn-model routing -> presets -> simulation
-> latency and power, against both baselines.

Run:  python examples/custom_soc_app.py
"""

from repro import NocConfig
from repro.eval.designs import build_design
from repro.eval.report import render_table
from repro.mapping.nmap import map_application
from repro.mapping.task_graph import task_graph_from_tuples
from repro.power.accounting import power_from_counters
from repro.sim.topology import Mesh

# An imaging pipeline with a DMA hub: (producer, consumer, MB/s).
EDGES = [
    ("sensor", "demosaic", 400),
    ("demosaic", "denoise", 400),
    ("denoise", "tonemap", 300),
    ("tonemap", "scaler", 250),
    ("scaler", "encoder", 200),
    ("encoder", "dma", 150),
    ("dma", "ddr", 600),
    ("stats3a", "isp_ctl", 20),
    ("demosaic", "stats3a", 80),
    ("isp_ctl", "sensor", 10),
    ("dma", "display", 300),
]


def main() -> None:
    cfg = NocConfig()
    mesh = Mesh(cfg.width, cfg.height)
    graph = task_graph_from_tuples("CameraISP", EDGES)
    mapping, flows = map_application(graph, mesh)

    print("Task placement (modified NMAP):")
    for task in graph.tasks:
        print("  %-10s -> core %2d" % (task, mapping[task]))

    rows = []
    for design in ("mesh", "smart", "dedicated"):
        instance = build_design(design, cfg, flows)
        result = instance.run(warmup_cycles=1000, measure_cycles=20000)
        power = power_from_counters(
            result.counters, cfg, link_only=(design == "dedicated")
        )
        row = {
            "design": design,
            "avg latency": round(result.mean_latency, 2),
            "power (mW)": round(power.total_w * 1e3, 2),
        }
        if instance.presets is not None:
            singles = len(instance.presets.single_cycle_flows())
            row["1-cycle flows"] = "%d/%d" % (singles, len(flows))
        rows.append(row)
    print()
    print(render_table(rows, title="CameraISP on the three designs"))


if __name__ == "__main__":
    main()
