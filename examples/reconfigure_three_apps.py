"""Fig 1: reconfigure one mesh for WLAN, then H264, then VOPD.

For each application the tool flow maps tasks with the modified NMAP,
computes crossbar presets, and compiles the 16-store reconfiguration
program (§V).  Between applications only the changed registers need
rewriting.

Run:  python examples/reconfigure_three_apps.py
"""

from repro import NocConfig
from repro.apps import evaluation_task_graph
from repro.core.presets import compute_presets
from repro.core.reconfiguration import compile_program, diff_program
from repro.eval.report import render_table
from repro.eval.scenarios import FIG1_APPS
from repro.mapping.nmap import map_application
from repro.sim.topology import Mesh


def main() -> None:
    cfg = NocConfig()
    mesh = Mesh(cfg.width, cfg.height)
    rows = []
    programs = []
    for app in FIG1_APPS:
        graph = evaluation_task_graph(app)
        mapping, flows = map_application(graph, mesh)
        presets = compute_presets(cfg, mesh, flows)
        program = compile_program(presets, app)
        programs.append(program)
        rows.append(
            {
                "app": app,
                "tasks": graph.num_tasks,
                "flows": len(flows),
                "1-cycle links": presets.one_cycle_link_count(),
                "1-cycle flows": len(presets.single_cycle_flows()),
                "stores": program.cost_instructions,
            }
        )
    print(render_table(rows, title="Fig 1: one mesh, three tailored topologies"))

    print("\nFirst three stores of the WLAN program:")
    for op in programs[0].stores[:3]:
        print("  %s" % op)

    print("\nIncremental switches:")
    for before, after in zip(programs, programs[1:]):
        delta = diff_program(before, after)
        print(
            "  %-14s rewrite %2d of 16 registers"
            % (delta.app_name, delta.cost_instructions)
        )
    print(
        "\nReconfiguration cost is just these stores (the network must be "
        "drained first) — §V."
    )


if __name__ == "__main__":
    main()
