"""Farmed tail-latency study: P50/P95/P99 bands under bursty load.

The committed reports (``results/tail_latency_16x16.md`` and
``results/tail_latency_32x32.md``) answer the service-grade question the
mean-latency sweeps cannot: *what does the tail do* as a mesh approaches
saturation under bursty, open-loop traffic — and what happens to a
latency-sensitive foreground application when a background tenant
saturates the fabric.

Three workloads per mesh size, each farmed through its own
``repro.eval.farm`` queue (content-addressed, resumable, droppable onto
any number of cooperating workers):

* ``uniform`` and ``transpose`` — the classic saturation patterns, but
  driven by the MMPP bursty arrival process (``arrival="mmpp"``: mean
  burst 32 cycles, mean gap 96 cycles, off-state rate 25% of the burst
  rate) so queues build and drain the way open-loop service traffic
  does.  The per-run latency histograms pool across 3 seeds into
  exact-to-bucket P50/P95/P99 curves (``<design>_p50/_p95/_p99``
  columns), alongside the Student-t 95% CI band over per-seed means.
* ``tenant_mix`` — the PIP application pinned as a fixed-rate
  foreground tenant while a hotspot background tenant sweeps the load
  axis.  The report's per-tenant table shows the foreground's p99
  collapsing as the background saturates its sink — the SLO verdict
  columns (p99 <= 100 cycles) mark exactly where service degrades.

Every grid point runs the event kernel; multi-seed replications are
bit-identical to the lockstep-batched sweep path, histograms included
(the cross-kernel fuzz suite pins this).  Reproduce the figures from
the committed merged streams with::

    python -m repro plot --histogram results/farm/<spec>/merged.jsonl

Run:  python examples/tail_latency_study.py

Environment:
    SMART_TAIL_PROCS   worker processes per queue (default 1)
    SMART_TAIL_SIZES   comma-separated mesh widths to run (default 16,32)
    SMART_TAIL_SEEDS   replications per grid point (default 3)
"""

import json
import math
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "src")
)

from repro.config import NocConfig  # noqa: E402
from repro.eval.farm import (  # noqa: E402
    enumerate_farm,
    merge_farm,
    work_many,
    work_on,
)

DESIGNS = ("mesh", "smart")
#: MMPP burst shape shared by every queue: mean 32-cycle bursts
#: separated by mean 96-cycle gaps, off-state at 25% of the burst rate.
ARRIVAL_PARAMS = {"on_cycles": 32.0, "off_cycles": 96.0}
#: Per-tenant SLO: p99 head latency must stay at or under this (cycles).
SLO_P99 = 100.0
#: Load grids per (workload, mesh width).  The uniform/transpose axes
#: bracket the bursty saturation knee; the tenant_mix axis sweeps the
#: *background* tenant through its hotspot sink's capacity (the
#: foreground stays pinned), so its loads sit far lower.
LOADS = {
    ("uniform", 16): (0.005, 0.0075, 0.01, 0.0125, 0.015),
    ("transpose", 16): (0.005, 0.0075, 0.01, 0.0125, 0.015),
    ("tenant_mix", 16): (0.0002, 0.0005, 0.00075, 0.001, 0.0015),
    ("uniform", 32): (0.0025, 0.005, 0.0075, 0.01, 0.0125),
    ("transpose", 32): (0.0025, 0.005, 0.0075, 0.01, 0.0125),
    ("tenant_mix", 32): (0.00005, 0.0001, 0.00015, 0.0002, 0.0003),
}
#: Longer measurement window for tenant_mix: its interesting loads are
#: tiny, so the window must be wide enough to populate the tails.
MEASURE = {"uniform": 2000, "transpose": 2000, "tenant_mix": 4000}

PROCS = int(os.environ.get("SMART_TAIL_PROCS", "1"))
SIZES = tuple(
    int(x) for x in os.environ.get("SMART_TAIL_SIZES", "16,32").split(",")
)
SEEDS = tuple(range(1, int(os.environ.get("SMART_TAIL_SEEDS", "3")) + 1))
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


def run_queue(workload, size):
    """Farm one (workload, size) queue to completion; return its rows."""
    spec = enumerate_farm(
        workload,
        designs=DESIGNS,
        loads=LOADS[(workload, size)],
        seeds=SEEDS,
        cfg=NocConfig(width=size, height=size),
        kernel="event",
        measure_cycles=MEASURE[workload],
        drain_limit=12000,
        arrival="mmpp",
        arrival_params=ARRIVAL_PARAMS,
    )
    print("%s %dx%d: farm %s (%d points)"
          % (workload, size, size, spec.spec_hash, len(spec.points())))

    def on_point(point, row):
        print("  %-10s load=%-8g seed=%d done"
              % (point.design, point.load, point.seed))

    if PROCS > 1:
        work_many(spec, PROCS)
    else:
        work_on(spec, on_point=on_point)
    result = merge_farm(spec, compact=True, slo=SLO_P99)
    assert result.complete, (
        "farm %s incomplete: %d points missing"
        % (spec.spec_hash, len(result.missing))
    )
    with open(result.json_path) as fh:
        return spec, json.load(fh)["rows"]


def _num(row, key):
    value = row.get(key)
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return None
    return value


def mean_cell(row, design):
    """``mean ± hw`` cycles, ``*``-flagged when any seed saturated."""
    mean = _num(row, design)
    if mean is None:
        return "n/a"
    half = _num(row, "%s_ci95" % design)
    flag = "*" if row.get("%s_saturated" % design) else ""
    if half is None:
        return "%.1f%s" % (mean, flag)
    return "%.1f ± %.1f%s" % (mean, half, flag)


def tail_cell(row, design):
    """``p50/p95/p99`` cycles, pooled exactly from per-seed histograms."""
    tails = [
        _num(row, "%s_%s" % (design, suffix))
        for suffix in ("p50", "p95", "p99")
    ]
    if any(t is None for t in tails):
        return "n/a"
    return "/".join("%.0f" % t for t in tails)


def workload_section(workload, size, spec, rows):
    lines = [
        "## %s (farm `%s`)" % (workload, spec.spec_hash),
        "",
        "| load | " + " | ".join(
            "%s mean | %s p50/p95/p99" % (d, d) for d in DESIGNS
        ) + " |",
        "| ---: | " + " | ".join("---: | ---:" for _ in DESIGNS) + " |",
    ]
    for row in rows:
        cells = []
        for design in DESIGNS:
            cells.append(mean_cell(row, design))
            cells.append(tail_cell(row, design))
        lines.append("| %g | %s |" % (row["load"], " | ".join(cells)))
    lines.append("")
    if workload == "tenant_mix":
        lines.extend(tenant_section(rows))
    return "\n".join(lines)


def tenant_section(rows):
    """Per-tenant p99 + SLO table for the foreground/background mix."""
    tenants = ("PIP", "hotspot")
    lines = [
        "Per-tenant p99 and SLO verdict (p99 <= %g cycles), mesh design;"
        % SLO_P99,
        "`sink bw` is delivered flits/cycle at the hottest ejection port:",
        "",
        "| load | " + " | ".join(
            "%s p99 | %s SLO" % (t, t) for t in tenants
        ) + " | sink bw |",
        "| ---: | " + " | ".join("---: | :---" for _ in tenants)
        + " | ---: |",
    ]
    for row in rows:
        cells = []
        for tenant in tenants:
            p99 = _num(row, "mesh_%s_p99" % tenant)
            cells.append("%.0f" % p99 if p99 is not None else "n/a")
            verdict = row.get("mesh_%s_slo_ok" % tenant)
            cells.append(
                "ok" if verdict else ("VIOLATED" if verdict is False
                                      else "n/a")
            )
        bw = _num(row, "mesh_max_node_bw")
        cells.append("%.3f" % bw if bw is not None else "n/a")
        lines.append("| %g | %s |" % (row["load"], " | ".join(cells)))
    lines.append("")
    return lines


def main():
    for size in SIZES:
        sections = []
        for workload in ("uniform", "transpose", "tenant_mix"):
            spec, rows = run_queue(workload, size)
            sections.append(workload_section(workload, size, spec, rows))
        report = os.path.join(
            RESULTS_DIR, "tail_latency_%dx%d.md" % (size, size)
        )
        with open(report, "w") as fh:
            fh.write(
                "# Tail latency under bursty load: %dx%d, %d seeds\n"
                "\n"
                "Head-latency percentiles in cycles under MMPP arrivals "
                "(mean burst %g cycles, mean gap %g cycles, off-state at "
                "25%% of the burst rate).  `mean` carries the Student-t "
                "95%% half-width over %d per-seed means; `p50/p95/p99` "
                "pool the per-seed latency histograms "
                "(`repro.sim.stats.LatencyHistogram`, exact to one "
                "bucket, <= 12.5%% relative width); `*` marks points "
                "where any seed failed to drain.  Event kernel, farmed "
                "through `repro.eval.farm` queues; regenerate with "
                "`python examples/tail_latency_study.py`, re-plot with "
                "`python -m repro plot --histogram "
                "results/farm/<spec>/merged.jsonl`.\n\n"
                % (size, size, len(SEEDS),
                   ARRIVAL_PARAMS["on_cycles"], ARRIVAL_PARAMS["off_cycles"],
                   len(SEEDS))
            )
            fh.write("\n".join(sections))
        print("wrote %s" % report)


if __name__ == "__main__":
    main()
